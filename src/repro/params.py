"""Calibration constants, each with provenance from the paper (Section 5).

The reproduction substitutes the Cadence cycle-accurate Xtensa simulator
with an abstract cycle-cost model; these constants pin the model to the
numbers the paper publishes so the figures regenerate with the same
shape.  Everything cycle-valued is in core clock cycles.
"""

from __future__ import annotations

import dataclasses

# --------------------------------------------------------------------------
# Hardware (Section 4.1, 5.1, 5.4)
# --------------------------------------------------------------------------

#: "the DTU, which transfers 8 Byte per cycle" (Section 5.4).
DTU_BYTES_PER_CYCLE = 8

#: Cache line size used for the Linux cache-miss cost equivalence:
#: "the transfer time for loading a cache line (32 Bytes) via the DTU".
CACHE_LINE_BYTES = 32

#: Number of endpoints per DTU: "only a limited number of endpoints
#: (8 in our prototype platform)" (Section 4.5.4).
DTU_ENDPOINTS = 8

#: SPM capacity per PE on the simulator platform: "each having a SPM of
#: 64 KiB for code and 64 KiB for data" (Section 4.1).
SPM_CODE_BYTES = 64 * 1024
SPM_DATA_BYTES = 64 * 1024

#: Per-hop router traversal latency in the NoC model.  Not published in
#: the paper; chosen small (3 cycles) so a one-hop 16-byte message costs
#: ~30 cycles end to end, matching "the actual message transfers take
#: about 30 cycles" for a syscall (Section 5.3) on the kernel-adjacent
#: placement used in the evaluation.
NOC_HOP_CYCLES = 3

#: Link bandwidth matches the DTU: 8 bytes/cycle.
NOC_BYTES_PER_CYCLE = 8

#: DTU-side fixed overhead to assemble/inject a message (header build,
#: arbitration).  Calibrated so message transfer ≈ 30 cycles (Section 5.3).
DTU_INJECT_CYCLES = 6

#: Fixed DRAM access latency added to DTU memory transfers (row access,
#: controller).  Not published; a modest constant consistent with the
#: transfer-dominated results in Figure 3.
DRAM_ACCESS_CYCLES = 20

# --------------------------------------------------------------------------
# Reliable DTU delivery (repro.faults / fault-tolerance experiments).
# Opt-in via DTU.enable_reliability(); zero overhead and unused in the
# calibrated paper figures, so none of these values affect them.
# --------------------------------------------------------------------------

#: Initial sender-side ack grace period, counted from the cycle the
#: network promised delivery at (so bulk packets whose wire time alone
#: is thousands of cycles are never retransmitted while still in
#: flight).  Covers receiver turnaround plus the ack's return trip
#: (~60-100 cycles one-hop; syscall service adds ~170); 512 cycles
#: keeps spurious retransmits rare while detecting losses quickly.
DTU_RETX_TIMEOUT_CYCLES = 512

#: Retransmit attempts before the DTU gives up, reconciles the spent
#: credit, and fails the transfer with TransferTimeout.
DTU_RETX_MAX = 6

#: Exponential backoff factor between retransmit attempts.
DTU_RETX_BACKOFF = 2.0

#: Receiver-side duplicate-suppression window: how many recently seen
#: (sender, sequence-number) pairs each ringbuffer remembers.  Must
#: exceed the in-flight depth of any sender times DTU_RETX_MAX.
DTU_DEDUP_WINDOW = 128

#: Kernel watchdog: probe period and per-probe response timeout.  The
#: probe is a privileged DTU configuration packet, so it works against
#: PEs whose software is dead (the DTU answers in hardware).
KERNEL_WATCHDOG_PERIOD = 5_000
KERNEL_PROBE_TIMEOUT_CYCLES = 4_000

#: Kernel-side software cost of issuing one watchdog probe.
KERNEL_PROBE_CYCLES = 40

# --------------------------------------------------------------------------
# Inter-kernel RPC reliability, heartbeats, and VPE migration.  All of
# these are opt-in like the reliable-DTU block above: RPC retry timers
# only arm on reliable DTUs, heartbeats only run when started, and
# migration only happens on request or during recovery, so none of
# these values affect the calibrated paper figures.
# --------------------------------------------------------------------------

#: Base kernel-level timeout for one inter-kernel RPC attempt.  Sits
#: above the DTU retransmit layer: it must cover a full request/serve/
#: reply round trip including kernel dispatch, so it is a few times the
#: DTU-level ack timeout.
IK_RPC_TIMEOUT_CYCLES = 2_048

#: Exponential backoff factor between inter-kernel RPC retries.  An
#: integer so the retry schedule stays exact (no float rounding) and
#: therefore bit-identical across runs.
IK_RPC_BACKOFF = 2

#: Deterministic cap on the backed-off inter-kernel retry interval.
IK_RPC_TIMEOUT_CAP_CYCLES = 16_384

#: Inter-kernel RPC attempts before the kernel gives up and completes
#: the request with an explicit ("timeout", ...) verdict.
IK_RPC_MAX_ATTEMPTS = 5

#: Server-side reply cache depth for inter-kernel RPC idempotency: how
#: many already-answered (peer, sequence-number) requests each kernel
#: can re-answer without re-executing them.
IK_RPC_REPLY_CACHE = 512

#: Heartbeat ring between kernel domains: ping period, and how tight
#: the heartbeat RPC's own retry budget is (heartbeats want a fast
#: verdict, not a patient one — a missed verdict is itself the signal).
KERNEL_HEARTBEAT_PERIOD = 8_000
KERNEL_HEARTBEAT_RPC_TIMEOUT_CYCLES = 1_024
KERNEL_HEARTBEAT_RPC_ATTEMPTS = 2

#: Consecutive heartbeat timeout verdicts before a peer kernel domain
#: is declared dead and failover starts.
KERNEL_HEARTBEAT_MISS_LIMIT = 2

#: How long a migrated-away VPE's old DTU forwards in-flight messages
#: and replies to the new node before the kernel wipes it.
DTU_REDIRECT_WINDOW_CYCLES = 4_096

#: Kernel-side software cost of taking one VPE checkpoint (walking the
#: endpoint registers and capability table; the SPM copy is a separate,
#: size-dependent timed transfer).  Same order as a context switch.
VPE_CHECKPOINT_KERNEL_CYCLES = 800

# --------------------------------------------------------------------------
# M3 software path lengths (Sections 5.3, 5.4)
# --------------------------------------------------------------------------

#: "a system call on M3 via DTU takes about 200 cycles ... the other 170
#: cycles are required for marshalling the messages, programming the DTU
#: registers, unmarshalling the messages and figuring out the system call
#: function to call" (Section 5.3).  We split the 170 software cycles
#: between the application side and the kernel side.
M3_SYSCALL_CLIENT_CYCLES = 60  # marshal + program DTU registers + unmarshal reply
M3_KERNEL_DISPATCH_CYCLES = 55  # find handler, unmarshal, validate
M3_KERNEL_REPLY_CYCLES = 55  # marshal reply, program DTU

#: "M3 on the other hand needs ~70 cycles to get to the read function"
#: (Section 5.4): libm3 entry for a file read/write call.
M3_FILE_DISPATCH_CYCLES = 70

#: "~90 cycles to determine the location for reading" (Section 5.4):
#: extent lookup within already-obtained memory capabilities.
M3_FILE_LOCATE_CYCLES = 90

#: Per-request m3fs costs, split between the client stub and the
#: server loop.  The *total* (~700 cycles plus wire time) makes an M3
#: stat slightly slower than Linux's well-optimized 700-cycle stat
#: (Section 5.6: "M3 is actually a bit slower").  The *split* matters
#: for scalability (Figure 6): only the server-side share serialises
#: at the single m3fs instance; with ~120 cycles there, find degrades
#: to ~2x at 16 instances as in the paper, while the client-side
#: marshalling/unmarshalling/bookkeeping (~580 cycles) runs on each
#: client's own PE in parallel.
M3FS_SERVER_CYCLES = 90
M3FS_CLIENT_RPC_CYCLES = 680

#: Extra server-side cost of allocation/truncation requests (append,
#: close-with-truncate): bitmap scans and extent-tree updates are far
#: heavier than a path lookup.  This is what makes *untar* (allocation
#: heavy) degrade visibly at 16 instances in Figure 6 while tar stays
#: acceptable, matching the paper's Section 5.7 discussion.
M3FS_ALLOC_CYCLES = 1500

#: Cost of a pipe notification handling in libm3 (ringbuffer state
#: update around the message).  Calibrated against Figure 3's pipe bar,
#: where M3's "Other" is roughly a third of Linux's.
M3_PIPE_NOTIFY_CYCLES = 120

#: Seek inside already-obtained extents: "most seek operations can be
#: done in libm3" (Section 4.5.8).
M3_SEEK_LOCAL_CYCLES = 40

#: libm3 VPE::run (clone): transfer code+data+heap+stack via DTU plus a
#: syscall to create the VPE; the constant covers the software part.
M3_VPE_RUN_SW_CYCLES = 400

# --------------------------------------------------------------------------
# Linux baseline path lengths (Sections 5.2, 5.3, 5.4)
# --------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class LinuxCosts:
    """Per-architecture Linux cost table.

    Defaults are the Xtensa numbers; :data:`LINUX_ARM` holds the ARM
    Cortex-A15 variants the paper reports in Section 5.2.
    """

    #: Null system call round trip: 410 on Xtensa, 320 on ARM (Sections
    #: 5.2, 5.3).  This is the full user→kernel→user cost including
    #: saving/restoring machine state.
    syscall_cycles: int = 410

    #: read()/write() per-block costs (Section 5.4): "~380 cycles for
    #: entering/leaving the kernel, ~400 cycles for retrieving the file
    #: pointer, doing security checks and executing function prologs/
    #: epilogs and ~550 cycles for page cache related operations".
    syscall_enter_leave_cycles: int = 380
    fd_lookup_checks_cycles: int = 400
    page_cache_op_cycles: int = 550

    #: Effective memcpy bandwidth in bytes/cycle.  "Xtensa does not have
    #: a cache line prefetcher ... memcpy cannot saturate the memory
    #: bandwidth" (Section 5.4).  The DTU reaches 8 B/cycle; calibrated
    #: to 2.0 B/cycle so that copying a 2 MiB file costs ~3.2 M cycles
    #: *more* than the DTU-speed transfer (Section 5.2's "3.2 million
    #: cycles overhead on both architectures"), which also lands the
    #: tar/untar ratios of Figure 5 near the paper's 20 %/16 %.
    memcpy_bytes_per_cycle: float = 2.0

    #: Context switch (direct cost): save/restore state, switch address
    #: space.  Not published; a conventional magnitude for a 32-bit SoC
    #: core, consistent with cat+tr being ~2x slower on Linux (Fig. 5).
    context_switch_cycles: int = 1200

    #: fork() / execve() base costs (beyond memory copying), calibrated
    #: against "VPE::run being faster than fork" in the cat+tr analysis.
    fork_cycles: int = 12000
    exec_cycles: int = 18000

    #: Page-fault handling (used by mmap-style paths and cold caches).
    page_fault_cycles: int = 900

    #: stat() total software cost: "stat is well optimized on Linux, so
    #: that M3 is actually a bit slower" (Section 5.6) — slightly under
    #: M3's message-based stat.
    stat_cycles: int = 700

    #: Zeroing a page before handing it to a writer: Linux "is
    #: overwriting each block with zeros before handing it out to a
    #: writing application" (Section 5.4); charged per 4 KiB block at
    #: memset bandwidth.
    memset_bytes_per_cycle: float = 4.0

    #: Pipe transfer per chunk: two syscalls plus copy in and out of the
    #: kernel pipe buffer, plus scheduler work.
    pipe_wakeup_cycles: int = 500

    #: Hypothetical miss-free copy/zero bandwidths (the "Lx-$" bars of
    #: Figure 3/5: "the time on Linux without cache misses").  With no
    #: misses the core could reach the DTU's 8 B/cycle.
    memcpy_nomiss_bytes_per_cycle: float = 8.0
    memset_nomiss_bytes_per_cycle: float = 8.0

    #: Directory-operation kernel work (mkdir/unlink/link/readdir) and
    #: per-component path-walk cost.  Not broken out in the paper;
    #: conventional magnitudes consistent with the find benchmark.
    dir_op_cycles: int = 600
    path_component_cycles: int = 250

    #: Effective copy bandwidth while mmap page faults interleave with
    #: the application's memcpy: "Linux's bad performance due to cache
    #: thrashing between the page fault handling of the kernel and the
    #: memcpy of the application" (Section 5.4) — the kernel's fault
    #: path evicts the app's working lines and vice versa, halving the
    #: already miss-limited bandwidth.
    mmap_thrash_bytes_per_cycle: float = 1.0


#: Xtensa cost table (the platform of the main evaluation).
LINUX_XTENSA = LinuxCosts()

#: ARM Cortex-A15 cost table (Section 5.2): faster syscalls, working
#: cache-line prefetcher, so memcpy saturates closer to the bus limit —
#: but the paper reports the same 3.2 M cycles copy overhead, dominated
#: by per-block kernel work; we keep copy bandwidth higher and kernel
#: costs slightly lower.
LINUX_ARM = LinuxCosts(
    syscall_cycles=320,
    syscall_enter_leave_cycles=300,
    fd_lookup_checks_cycles=400,
    page_cache_op_cycles=700,
    memcpy_bytes_per_cycle=2.0,
    context_switch_cycles=1000,
)

#: tmpfs block size on Linux: "tmpfs used a block size 4 KiB" (Section 5.4).
LINUX_BLOCK_BYTES = 4 * 1024

# --------------------------------------------------------------------------
# m3fs parameters (Sections 4.5.8, 5.4, 5.5)
# --------------------------------------------------------------------------

#: "m3fs used a block size of 1 KiB" (Section 5.4).
M3FS_BLOCK_BYTES = 1 * 1024

#: "the sweet spot is 256 blocks, so that we chose to allocate that
#: number of blocks at once when appending to a file" (Section 5.5).
M3FS_APPEND_BLOCKS = 256

# --------------------------------------------------------------------------
# Workload parameters (Sections 5.4, 5.6, 5.8)
# --------------------------------------------------------------------------

#: Micro-benchmark transfer size and buffer size (Section 5.4).
MICRO_FILE_BYTES = 2 * 1024 * 1024
MICRO_BUFFER_BYTES = 4 * 1024

#: cat+tr pipes a 64 KiB file (Section 5.6).
CAT_TR_FILE_BYTES = 64 * 1024

#: tar archive: "files between 60 and 500 KiB and 1.2 MiB in total".
TAR_TOTAL_BYTES = 1_228_800  # 1.2 MiB
TAR_MIN_FILE_BYTES = 60 * 1024
TAR_MAX_FILE_BYTES = 500 * 1024

#: find: "searches for files within a directory tree of 40 items".
FIND_TREE_ITEMS = 40

#: sqlite: "creates a table, inserts 8 entries and selects them".
SQLITE_INSERTS = 8

#: FFT benchmark: "32 KiB of data in total" (Section 5.8); the
#: accelerator is "about a factor of 30" faster than the software FFT.
#: The software density is calibrated so the Linux bar of Figure 7
#: lands near the paper's ~3 M cycles.
FFT_DATA_BYTES = 32 * 1024
FFT_SW_CYCLES_PER_BYTE = 75.0  # software FFT cost density
FFT_ACCEL_SPEEDUP = 30.0

#: cat+tr: per-byte cost of the tr substitution loop (identical source
#: on both systems, Section 5.6).
TR_CYCLES_PER_BYTE = 2.0

#: FFT chain: per-byte cost of generating the random input numbers.
RAND_GEN_CYCLES_PER_BYTE = 6.0

#: Buffer used when replaying block-copy syscalls (sendfile) on M3 —
#: "M3 benefits from larger buffer sizes until all available space in
#: the SPM is used" (Section 5.4); 16 KiB stays well inside the SPM.
REPLAY_BUFFER_BYTES = 16 * 1024

#: sqlite benchmark compute model: "computation makes up the majority
#: of the execution time" and sqlite "is only slightly faster on M3"
#: (Section 5.6).  Waits inserted for the computation phases, identical
#: on both systems; sized so compute is ~85 % of the Linux total.
SQLITE_CREATE_CYCLES = 100_000
SQLITE_INSERT_CYCLES = 40_000
SQLITE_SELECT_CYCLES = 70_000

# --------------------------------------------------------------------------
# Key-value service tier and traffic workload (the "serve heavy
# traffic" scenario; not part of the paper's calibrated figures).
# --------------------------------------------------------------------------

#: Server-side software cost of one kv request (hash lookup, store
#: bookkeeping, reply marshalling).  Slightly above the m3fs server
#: share: a kv op touches the value where an m3fs metadata op does not.
KV_SERVER_CYCLES = 120

#: Client-side share of a kv RPC (marshalling, unmarshalling,
#: descriptor bookkeeping), mirroring the m3fs split: only the
#: server-side share serialises at a replica.
KV_CLIENT_RPC_CYCLES = 400

#: Server-side value copy bandwidth (bytes/cycle) — the value rides in
#: the request/reply message, so it moves at DTU speed.
KV_VALUE_BYTES_PER_CYCLE = 8

#: kv request/reply message capacity (same geometry as m3fs).
KV_MSG_BYTES = 496
KV_RING_SLOTS = 64

# --------------------------------------------------------------------------
# Elastic scaling (the kv-tier autoscaler)
# --------------------------------------------------------------------------

#: cycles between autoscaler epochs (sample telemetry, decide, act).
AUTOSCALE_EPOCH_CYCLES = 40_000

#: kernel software cost of one epoch's sampling and decision.
AUTOSCALE_SAMPLE_CYCLES = 200


# --------------------------------------------------------------------------
# Platform shape used by the evaluation
# --------------------------------------------------------------------------

#: Default mesh for experiments: enough PEs for the 16-instance
#: scalability run (Figure 6) plus kernel, services, and DRAM interface.
DEFAULT_MESH_WIDTH = 8
DEFAULT_MESH_HEIGHT = 8

#: Default ringbuffer geometry for syscall/service channels.
DEFAULT_MSG_SLOT_BYTES = 256
DEFAULT_RINGBUF_SLOTS = 16
