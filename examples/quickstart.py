"""Quickstart: boot M3 on a simulated Tomahawk and touch every core API.

Run with:  python examples/quickstart.py

What happens:
1. A platform (mesh NoC + PEs with DTUs + one DRAM module) is built and
   the M3 kernel boots on PE 0, downgrading all other DTUs.
2. The m3fs service starts on its own PE.
3. An application VPE writes and reads a file through the VFS, clones
   itself onto a second PE, and exchanges messages with it over a
   kernel-established channel — all over simulated DTUs.
"""

from repro.m3.lib.file import OpenFlags
from repro.m3.lib.gate import RecvGate, SendGate
from repro.m3.kernel import syscalls
from repro.m3.lib.vpe import VPE
from repro.m3.system import M3System


def echo_child(env, parent_note):
    """Runs on its own PE; waits for a message and replies to it."""
    rgate = yield from RecvGate.create(env, slot_size=128, slot_count=4)
    sgate_sel = yield from env.syscall(
        syscalls.CREATE_SGATE, rgate.selector, 0x1D, 4
    )
    # Tell the parent the selector through the filesystem (simplest
    # rendezvous there is).
    f = yield from env.vfs.open("/rendezvous", OpenFlags.W | OpenFlags.CREATE)
    yield from f.write(str(sgate_sel).encode())
    yield from f.close()
    slot, message = yield from rgate.receive()
    yield from rgate.reply(slot, f"echo: {message.payload}", 64)
    return parent_note


def main_app(env):
    # --- files ------------------------------------------------------
    f = yield from env.vfs.open("/hello.txt", OpenFlags.W | OpenFlags.CREATE)
    yield from f.write(b"hello heterogeneous manycores")
    yield from f.close()
    g = yield from env.vfs.open("/hello.txt", OpenFlags.R)
    content = yield from g.read(100)
    yield from g.close()
    print(f"[t={env.sim.now:>8}] file read back: {content.decode()!r}")

    # --- a second VPE -----------------------------------------------
    child = yield from VPE.create(env, "echo")
    yield from child.run(echo_child, "done")
    # Wait for the child to publish its send-gate selector (the file
    # may exist but still be empty while the child is mid-write).
    data = b""
    while not data:
        try:
            r = yield from env.vfs.open("/rendezvous", OpenFlags.R)
        except Exception:
            yield 1000
            continue
        data = yield from r.read(16)
        yield from r.close()
        if not data:
            yield 1000

    # The child's capability must be delegated to us by the kernel; in
    # a real program the child's selector arrives via a session — here
    # we ask the kernel to copy it across (delegation demo).
    child_sel = int(data.decode())
    kernel = env.system.kernel
    child_vpe = kernel.vpes[child.vpe_id]
    cap = child_vpe.captable.get(child_sel)
    own_sel = kernel.vpes[env.vpe_id].captable.insert(cap.derive())

    from repro.m3.lib.gate import BoundRecvGate

    sgate = SendGate(env, own_sel)
    reply_gate = BoundRecvGate(env, env.EP_REPLY)
    reply = yield from sgate.call("ping from parent", reply_gate)
    print(f"[t={env.sim.now:>8}] child answered: {reply.payload!r}")
    result = yield from child.wait()
    print(f"[t={env.sim.now:>8}] child exited with {result!r}")
    return 0


def main():
    system = M3System(pe_count=6).boot()
    print(f"booted: {len(system.platform.pes)} PEs, kernel on PE "
          f"{system.kernel.node}, m3fs on PE {system.fs_server.vpe.node}")
    system.run_app(main_app, name="quickstart")
    print(f"simulation finished at cycle {system.sim.now:,}")
    print(f"syscalls handled by the kernel: {system.kernel.syscall_count}")


if __name__ == "__main__":
    main()
