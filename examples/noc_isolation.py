"""NoC-level isolation in action.

Run with:  python examples/noc_isolation.py

Demonstrates the paper's central security idea (Section 3.2): cores are
untrusted; only the DTU is.  After boot the kernel has downgraded every
application DTU, so applications

1. cannot write their own endpoint configuration registers,
2. cannot forge privileged configuration packets to other PEs,
3. cannot touch DRAM without a delegated memory capability,
4. lose hardware access the instant a capability is revoked.
"""

from repro.dtu import NoPermission
from repro.dtu.registers import EndpointRegisters, MemoryPerm
from repro.m3.kernel import syscalls
from repro.m3.lib.gate import MemGate
from repro.m3.lib.vpe import VPE
from repro.m3.system import M3System


def attacker(env):
    outcomes = []

    # 1. local register writes are refused by unprivileged DTUs
    try:
        env.dtu.configure_local(
            "configure", 3, EndpointRegisters.receive_config(0, 64, 4)
        )
        outcomes.append(("write own EP registers", "ALLOWED?!"))
    except NoPermission:
        outcomes.append(("write own EP registers", "denied (unprivileged DTU)"))

    # 2. remote configuration packets carry the hardware privilege bit
    try:
        yield from env.dtu.configure_remote(env.pe.node + 1, "upgrade")
        outcomes.append(("reconfigure another PE", "ALLOWED?!"))
    except NoPermission:
        outcomes.append(("reconfigure another PE", "denied by target DTU"))

    # 3. no memory endpoint, no DRAM
    try:
        yield from env.dtu.read_memory(5, 0, 64)
        outcomes.append(("raw DRAM read", "ALLOWED?!"))
    except NoPermission:
        outcomes.append(("raw DRAM read", "denied (no memory endpoint)"))

    return outcomes


def revocation_demo(env):
    gate = yield from MemGate.create(env, 4096, MemoryPerm.RW.value)
    yield from gate.write(0, b"sensitive")
    child = yield from VPE.create(env, "borrower")
    child_sel = yield from child.delegate_gate(gate)
    yield from child.run(borrower, child_sel)
    yield 3000
    yield from env.syscall(syscalls.REVOKE, gate.selector)
    return (yield from child.wait())


def borrower(env, mem_sel):
    gate = MemGate(env, mem_sel, 4096)
    before = yield from gate.read(0, 9)
    yield 6000  # revocation strikes here
    try:
        yield from gate.read(0, 9)
        return (before, "still readable?!")
    except NoPermission:
        return (before, "revoked -> hardware access cut")


def main():
    system = M3System(pe_count=6).boot(with_fs=False)
    print("attack surface probes (all must be denied):")
    for what, outcome in system.run_app(attacker, name="attacker"):
        print(f"  {what:<28} -> {outcome}")

    before, after = system.run_app(revocation_demo, name="owner")
    print("capability revocation:")
    print(f"  before revoke: read {before!r}")
    print(f"  after revoke : {after}")


if __name__ == "__main__":
    main()
