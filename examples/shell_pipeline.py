"""A shell-style pipeline on M3: cat input | tr a b > output.

Run with:  python examples/shell_pipeline.py

This is the paper's cat+tr benchmark (Section 5.6) used as an example:
a child VPE streams a file into a pipe while the parent transforms and
writes the result — the kernel is uninvolved after setup.  The script
verifies the output bytes and prints the cycle breakdown.
"""

from repro.eval.report import stacks
from repro.m3.system import M3System
from repro.workloads.cat_tr import (
    INPUT_PATH,
    OUTPUT_PATH,
    input_bytes,
    m3_cat_tr,
)


def main():
    system = M3System(pe_count=6).boot()
    system.fs_preload({INPUT_PATH: input_bytes()})

    wall, ledger = system.run_app(m3_cat_tr, name="cat+tr")

    produced = system.fs_read_back(OUTPUT_PATH)
    expected = input_bytes().replace(b"a", b"b")
    assert produced == expected, "pipeline corrupted the data!"

    app, xfers, os_cycles = stacks(ledger)
    print(f"pipeline moved {len(produced):,} bytes in {wall:,} cycles")
    print(f"  application compute : {app:>9,}")
    print(f"  data transfers      : {xfers:>9,}")
    print(f"  OS / libm3          : {os_cycles:>9,}")
    print("output verified: every 'a' became 'b' -", produced[:40], "...")


if __name__ == "__main__":
    main()
