"""Profiling a run: latency histograms and a Chrome trace.

Run with:  python examples/profile_trace.py

Passing ``observe=True`` to :class:`M3System` installs an Observer on
the simulator; every layer (NoC, DTU, kernel, m3fs) then records spans,
counters, and log2-bucket latency histograms as it works.  This example
runs the profile microbenchmark (null syscalls + a buffered file read),
prints the report, and shows how to export the span timeline as a
Chrome trace-event file that loads in Perfetto or chrome://tracing.
"""

import json

from repro.eval import profile
from repro.obs import to_chrome_trace


def main():
    system = profile.run()
    print(profile.render(system))
    print()

    trace = to_chrome_trace(system.sim.obs)
    events = trace["traceEvents"]
    spans = sum(1 for e in events if e["ph"] == "X")
    instants = sum(1 for e in events if e["ph"] == "i")
    print(f"Chrome trace: {spans} spans, {instants} instants, "
          f"{len(json.dumps(trace)):,} bytes of JSON")
    print("write it with: "
          "repro.obs.export_chrome_trace(system.sim.obs, 'run.trace.json')")


if __name__ == "__main__":
    main()
