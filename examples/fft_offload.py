"""Offloading to an accelerator: the paper's FFT filter chain.

Run with:  python examples/fft_offload.py

Builds two systems — one homogeneous, one with an FFT accelerator PE —
and runs the identical parent program on both.  The only difference is
the executable path handed to the child VPE (Section 5.8): the kernel
places the accelerated binary on the accelerator core.
"""

from repro.m3.system import M3System
from repro.workloads.fft import (
    FFT_ACCEL_BINARY,
    FFT_SW_BINARY,
    m3_fft_chain,
    m3_fft_setup,
)


def run(binary: str, accelerated: bool):
    accelerators = {"fft-accel": 1} if accelerated else None
    system = M3System(pe_count=5, accelerators=accelerators).boot()
    m3_fft_setup(system)
    wall, ledger = system.run_app(m3_fft_chain, binary, name="fft-chain")
    return wall, ledger


def main():
    software_wall, software_ledger = run(FFT_SW_BINARY, accelerated=False)
    accel_wall, accel_ledger = run(FFT_ACCEL_BINARY, accelerated=True)

    print("FFT filter chain: generate -> pipe -> FFT -> file (32 KiB)")
    print(f"  software FFT   : {software_wall:>10,} cycles "
          f"(FFT part {software_ledger.get('fft', 0):,})")
    print(f"  accelerator FFT: {accel_wall:>10,} cycles "
          f"(FFT part {accel_ledger.get('fft', 0):,})")
    print(f"  end-to-end speedup: {software_wall / accel_wall:.1f}x")
    print(f"  FFT-only speedup  : "
          f"{software_ledger['fft'] / accel_ledger['fft']:.1f}x")
    print("note: the parent code was byte-for-byte identical in both runs;")
    print("only the executable path differed.")


if __name__ == "__main__":
    main()
