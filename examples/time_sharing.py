"""PE time-multiplexing: running more VPEs than PEs.

Run with:  python examples/time_sharing.py

The paper's prototype dedicates a PE per VPE; Sections 3.3/7 sketch
context switching for when cores run out.  This example enables the
multiplexing extension and runs four workers on a system with a single
application PE: each worker gets the PE while the parent waits
(``wait_yield``), whose state is saved to a DRAM staging area and
restored afterwards.  The closing report shows what it cost.
"""

from repro.eval import stats
from repro.m3.lib import serial
from repro.m3.lib.vpe import VPE
from repro.m3.system import M3System


def worker(env, index):
    yield env.compute(20_000)
    serial.get(env) << f"worker {index} ran on PE {env.pe.node}\n"
    return index * index


def parent(env):
    results = []
    for index in range(4):
        vpe = yield from VPE.create(env, f"worker{index}")
        yield from vpe.run(worker, index)
        # offer our PE while waiting: the kernel switches the worker in
        results.append((yield from vpe.wait_yield()))
    return results


def main():
    # Two PEs total: the kernel and one shared application PE.
    system = M3System(pe_count=2, multiplexing=True).boot(with_fs=False)
    results = system.run_app(parent, name="parent")
    print(f"4 workers on 1 application PE -> results {results}")
    for _t, _vpe, line in system.serial_log:
        print(" ", line)
    print(f"context switches performed: {system.kernel.ctxsw.switch_count}")
    print()
    print(stats.report(system))


if __name__ == "__main__":
    main()
