"""Unit tests for the network facade."""

import pytest

from repro.noc import MeshTopology, Network, Packet
from repro.noc.network import PACKET_HEADER_BYTES
from repro.sim import Simulator


def _network(width=4, height=4, hop=3, bw=8):
    sim = Simulator()
    net = Network(sim, MeshTopology(width, height), hop_cycles=hop, bytes_per_cycle=bw)
    return sim, net


def test_delivery_invokes_handler_with_packet():
    sim, net = _network()
    received = []
    net.attach(3, received.append)
    packet = Packet(source=0, destination=3, kind="message", size_bytes=64)
    net.send(packet)
    sim.run()
    assert received == [packet]


def test_delivery_latency_single_hop():
    sim, net = _network(hop=3, bw=8)
    net.attach(1, lambda p: None)
    packet = Packet(source=0, destination=1, kind="message", size_bytes=48)
    completion = net.send(packet)
    # 1 hop * 3 cycles + (48+16)/8 = 8 serialisation cycles
    assert completion == 3 + (48 + PACKET_HEADER_BYTES) // 8


def test_delivery_latency_grows_with_hops():
    sim, net = _network(hop=3, bw=8)
    net.attach(3, lambda p: None)
    one_hop = net.delivery_time(Packet(0, 1, "message", 0))
    sim2, net2 = _network(hop=3, bw=8)
    net2.attach(3, lambda p: None)
    three_hops = net2.delivery_time(Packet(0, 3, "message", 0))
    assert three_hops - one_hop == 2 * 3


def test_contention_serializes_packets_on_shared_link():
    sim, net = _network(hop=0, bw=8)
    arrivals = []
    net.attach(1, lambda p: arrivals.append((sim.now, p.packet_id)))
    a = Packet(0, 1, "message", 8 * 10 - PACKET_HEADER_BYTES)  # 10 cycles
    b = Packet(0, 1, "message", 8 * 10 - PACKET_HEADER_BYTES)
    net.send(a)
    net.send(b)
    sim.run()
    assert arrivals == [(10, a.packet_id), (20, b.packet_id)]


def test_disjoint_paths_do_not_interfere():
    sim, net = _network(hop=1, bw=8)
    net.attach(1, lambda p: None)
    net.attach(14, lambda p: None)
    t1 = net.delivery_time(Packet(0, 1, "message", 800))
    t2 = net.delivery_time(Packet(15, 14, "message", 800))
    assert t1 == t2  # same geometry, no shared links


def test_send_without_handler_raises():
    sim, net = _network()
    with pytest.raises(RuntimeError):
        net.send(Packet(0, 5, "message", 8))


def test_double_attach_rejected():
    sim, net = _network()
    net.attach(2, lambda p: None)
    with pytest.raises(ValueError):
        net.attach(2, lambda p: None)


def test_transfer_event_and_ledger_tag():
    sim, net = _network(hop=3, bw=8)
    net.attach(2, lambda p: None)

    def sender():
        yield net.transfer(Packet(0, 2, "mem_write", 240), tag="xfer")
        return sim.now

    finish = sim.run_process(sender())
    assert finish == sim.ledger.total("xfer")
    assert finish == 2 * 3 + (240 + PACKET_HEADER_BYTES) // 8


def test_self_send_loops_back():
    sim, net = _network(hop=3, bw=8)
    got = []
    net.attach(0, got.append)
    completion = net.send(Packet(0, 0, "message", 8))
    assert completion == 3 + (8 + PACKET_HEADER_BYTES) // 8
    sim.run()
    assert len(got) == 1


def test_utilization_report_only_lists_used_links():
    sim, net = _network(hop=0, bw=8)
    net.attach(1, lambda p: None)
    net.send(Packet(0, 1, "message", 64))
    sim.run()
    report = net.utilization_report()
    assert set(report) == {(0, 1)}
    assert 0 < report[(0, 1)] <= 1.0


def test_loopback_uses_a_real_link():
    sim, net = _network(hop=3, bw=8)
    net.attach(0, lambda p: None)
    net.send(Packet(0, 0, "message", 64))
    sim.run()
    # Self-traffic shows up in per-link stats like any other traffic.
    link = net.link(0, 0)
    assert link.packets == 1
    assert (0, 0) in net.utilization_report()


def test_loopback_traffic_queues():
    sim, net = _network(hop=3, bw=8)
    arrivals = []
    net.attach(0, lambda p: arrivals.append(sim.now))
    size = 8 * 10 - PACKET_HEADER_BYTES  # 10 serialisation cycles
    net.send(Packet(0, 0, "message", size))
    net.send(Packet(0, 0, "message", size))
    sim.run()
    # Second packet waits for the loopback link, just like a wire.
    assert arrivals == [13, 23]


def test_fault_verdict_precedes_delivery_counters():
    from repro.faults.plan import FaultPlan

    sim, net = _network(hop=0, bw=8)
    delivered = []
    net.attach(1, delivered.append)
    FaultPlan(seed=7).drop(1.0).install(net)
    net.send(Packet(0, 1, "message", 64))
    sim.run()
    # The packet was injected but never delivered: the injection
    # counters record it, the delivery counters do not.
    assert delivered == []
    assert net.packets_injected == 1 and net.bytes_injected == 64
    assert net.packets_sent == 0 and net.bytes_sent == 0
    assert net.packets_lost == 1


def test_counters_agree_without_faults():
    sim, net = _network()
    net.attach(3, lambda p: None)
    net.send(Packet(0, 3, "message", 64))
    net.send(Packet(0, 3, "message", 32))
    sim.run()
    assert net.packets_injected == net.packets_sent == 2
    assert net.bytes_injected == net.bytes_sent == 96
