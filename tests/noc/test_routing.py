"""Unit and property tests for XY routing."""

from hypothesis import given
from hypothesis import strategies as st

from repro.noc import MeshTopology, XYRouter


def _router(width=4, height=4):
    return XYRouter(MeshTopology(width, height))


def test_route_to_self_is_single_node():
    router = _router()
    assert router.route(5, 5) == [5]
    assert router.hops(5, 5) == 0


def test_route_goes_x_first():
    router = _router(4, 4)
    # 0 is (0,0); 10 is (2,2): expect 0 -> 1 -> 2 -> 6 -> 10
    assert router.route(0, 10) == [0, 1, 2, 6, 10]


def test_route_westward_then_north():
    router = _router(4, 4)
    # 15 is (3,3); 4 is (0,1): expect x corrections then y.
    assert router.route(15, 4) == [15, 14, 13, 12, 8, 4]


def test_links_on_path_pairs():
    router = _router(3, 3)
    assert router.links_on_path(0, 2) == [(0, 1), (1, 2)]


@given(
    st.integers(min_value=1, max_value=9),
    st.integers(min_value=1, max_value=9),
    st.data(),
)
def test_routes_are_minimal_and_connected(width, height, data):
    topo = MeshTopology(width, height)
    router = XYRouter(topo)
    src = data.draw(st.integers(min_value=0, max_value=topo.node_count - 1))
    dst = data.draw(st.integers(min_value=0, max_value=topo.node_count - 1))
    path = router.route(src, dst)
    assert path[0] == src
    assert path[-1] == dst
    # Minimality: hop count equals Manhattan distance.
    assert len(path) - 1 == topo.distance(src, dst)
    # Connectivity: consecutive nodes are mesh neighbors.
    for a, b in zip(path, path[1:]):
        assert b in topo.neighbors(a)
    # No node revisited (paths are simple).
    assert len(set(path)) == len(path)


@given(
    st.integers(min_value=2, max_value=8),
    st.integers(min_value=2, max_value=8),
    st.data(),
)
def test_xy_routing_never_turns_from_y_to_x(width, height, data):
    """The deadlock-freedom argument: once a packet moves vertically it
    never moves horizontally again."""
    topo = MeshTopology(width, height)
    router = XYRouter(topo)
    src = data.draw(st.integers(min_value=0, max_value=topo.node_count - 1))
    dst = data.draw(st.integers(min_value=0, max_value=topo.node_count - 1))
    path = router.route(src, dst)
    moved_vertically = False
    for a, b in zip(path, path[1:]):
        ax, ay = topo.coordinates(a)
        bx, by = topo.coordinates(b)
        if ay != by:
            moved_vertically = True
        elif moved_vertically:
            raise AssertionError(f"path {path} turned from Y back to X")


def test_yx_routes_vertical_first():
    from repro.noc import YXRouter

    router = YXRouter(MeshTopology(4, 4))
    # 0 is (0,0); 10 is (2,2): expect 0 -> 4 -> 8 -> 9 -> 10
    assert router.route(0, 10) == [0, 4, 8, 9, 10]


@given(
    st.integers(min_value=1, max_value=9),
    st.integers(min_value=1, max_value=9),
    st.data(),
)
def test_yx_routes_are_minimal_too(width, height, data):
    from repro.noc import YXRouter

    topo = MeshTopology(width, height)
    router = YXRouter(topo)
    src = data.draw(st.integers(min_value=0, max_value=topo.node_count - 1))
    dst = data.draw(st.integers(min_value=0, max_value=topo.node_count - 1))
    path = router.route(src, dst)
    assert path[0] == src and path[-1] == dst
    assert len(path) - 1 == topo.distance(src, dst)
    for a, b in zip(path, path[1:]):
        assert b in topo.neighbors(a)


def test_xy_and_yx_take_disjoint_middle_paths():
    """The classic decorrelation: opposite corners, different links."""
    from repro.noc import XYRouter, YXRouter

    topo = MeshTopology(4, 4)
    xy = set(XYRouter(topo).links_on_path(0, 15))
    yx = set(YXRouter(topo).links_on_path(0, 15))
    assert not (xy & yx)  # fully link-disjoint for corner-to-corner
