"""Unit and property tests for link reservation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.noc import Link


def test_serialization_time():
    link = Link(0, 1, bytes_per_cycle=8)
    assert link.serialization_cycles(64) == 8
    assert link.serialization_cycles(65) == 9
    assert link.serialization_cycles(0) == 1  # even empty packets take a cycle


def test_reservations_queue_fifo():
    link = Link(0, 1, bytes_per_cycle=8)
    first = link.reserve(0, 80)  # 10 cycles
    second = link.reserve(0, 80)
    assert first == (0, 10)
    assert second == (10, 20)


def test_reservation_respects_earliest():
    link = Link(0, 1, bytes_per_cycle=8)
    start, end = link.reserve(100, 8)
    assert start == 100 and end == 101


def test_idle_gap_not_reclaimed():
    # FIFO model: a late request cannot be scheduled before next_free even
    # if the link was idle earlier.
    link = Link(0, 1, bytes_per_cycle=8)
    link.reserve(50, 8)
    start, _ = link.reserve(0, 8)
    assert start == 51


def test_utilization():
    link = Link(0, 1, bytes_per_cycle=8)
    link.reserve(0, 80)  # busy 10 cycles
    assert link.utilization(20) == pytest.approx(0.5)
    assert link.utilization(0) == 0.0


def test_invalid_bandwidth_and_size():
    with pytest.raises(ValueError):
        Link(0, 1, bytes_per_cycle=0)
    link = Link(0, 1, bytes_per_cycle=4)
    with pytest.raises(ValueError):
        link.serialization_cycles(-1)


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=1000),
            st.integers(min_value=0, max_value=4096),
        ),
        min_size=1,
        max_size=50,
    )
)
def test_reservations_never_overlap(requests):
    link = Link(0, 1, bytes_per_cycle=8)
    windows = [link.reserve(earliest, nbytes) for earliest, nbytes in requests]
    for (s1, e1), (s2, e2) in zip(windows, windows[1:]):
        assert e1 <= s2, "link occupied by two packets at once"
        assert s1 < e1 and s2 < e2
    # Busy time equals the sum of window lengths.
    assert link.busy_cycles == sum(e - s for s, e in windows)


def test_utilization_is_exact_within_elapsed_window():
    link = Link(0, 1, bytes_per_cycle=8)
    link.reserve(100, 80)  # busy [100, 110)
    # The whole reservation lies in the future of cycle 50: no busy time
    # may be counted (the old implementation counted it all, then clamped).
    assert link.utilization(50) == 0.0
    assert link.busy_within(50) == 0
    # A straddling window counts only its overlap with [0, elapsed).
    assert link.busy_within(105) == 5
    assert link.utilization(105) == pytest.approx(5 / 105)
    # Past the window the full 10 cycles count.
    assert link.busy_within(200) == 10
    assert link.utilization(200) == pytest.approx(10 / 200)


def test_utilization_never_exceeds_one():
    link = Link(0, 1, bytes_per_cycle=8)
    for _ in range(10):
        link.reserve(0, 80)  # back-to-back [0, 100)
    for elapsed in (1, 5, 50, 99, 100, 1000):
        assert 0.0 < link.utilization(elapsed) <= 1.0
    assert link.utilization(50) == pytest.approx(1.0)


def test_busy_within_merges_contiguous_windows():
    link = Link(0, 1, bytes_per_cycle=8)
    link.reserve(0, 40)    # [0, 5)
    link.reserve(0, 40)    # [5, 10) - contiguous, merged internally
    link.reserve(20, 40)   # [20, 25) - a gap before it
    assert link.busy_within(10) == 10
    assert link.busy_within(15) == 10
    assert link.busy_within(22) == 12
    assert link.busy_within(30) == 15
    assert link.busy_cycles == 15
