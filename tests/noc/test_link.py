"""Unit and property tests for link reservation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.noc import Link


def test_serialization_time():
    link = Link(0, 1, bytes_per_cycle=8)
    assert link.serialization_cycles(64) == 8
    assert link.serialization_cycles(65) == 9
    assert link.serialization_cycles(0) == 1  # even empty packets take a cycle


def test_reservations_queue_fifo():
    link = Link(0, 1, bytes_per_cycle=8)
    first = link.reserve(0, 80)  # 10 cycles
    second = link.reserve(0, 80)
    assert first == (0, 10)
    assert second == (10, 20)


def test_reservation_respects_earliest():
    link = Link(0, 1, bytes_per_cycle=8)
    start, end = link.reserve(100, 8)
    assert start == 100 and end == 101


def test_idle_gap_not_reclaimed():
    # FIFO model: a late request cannot be scheduled before next_free even
    # if the link was idle earlier.
    link = Link(0, 1, bytes_per_cycle=8)
    link.reserve(50, 8)
    start, _ = link.reserve(0, 8)
    assert start == 51


def test_utilization():
    link = Link(0, 1, bytes_per_cycle=8)
    link.reserve(0, 80)  # busy 10 cycles
    assert link.utilization(20) == pytest.approx(0.5)
    assert link.utilization(0) == 0.0


def test_invalid_bandwidth_and_size():
    with pytest.raises(ValueError):
        Link(0, 1, bytes_per_cycle=0)
    link = Link(0, 1, bytes_per_cycle=4)
    with pytest.raises(ValueError):
        link.serialization_cycles(-1)


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=1000),
            st.integers(min_value=0, max_value=4096),
        ),
        min_size=1,
        max_size=50,
    )
)
def test_reservations_never_overlap(requests):
    link = Link(0, 1, bytes_per_cycle=8)
    windows = [link.reserve(earliest, nbytes) for earliest, nbytes in requests]
    for (s1, e1), (s2, e2) in zip(windows, windows[1:]):
        assert e1 <= s2, "link occupied by two packets at once"
        assert s1 < e1 and s2 < e2
    # Busy time equals the sum of window lengths.
    assert link.busy_cycles == sum(e - s for s, e in windows)
