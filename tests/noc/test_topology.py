"""Unit and property tests for the mesh topology."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.noc import MeshTopology


def test_node_count():
    assert MeshTopology(4, 3).node_count == 12


def test_coordinates_roundtrip():
    topo = MeshTopology(5, 4)
    for node in range(topo.node_count):
        x, y = topo.coordinates(node)
        assert topo.node_at(x, y) == node


def test_corner_neighbors():
    topo = MeshTopology(3, 3)
    assert sorted(topo.neighbors(0)) == [1, 3]
    assert sorted(topo.neighbors(8)) == [5, 7]


def test_center_has_four_neighbors():
    topo = MeshTopology(3, 3)
    assert sorted(topo.neighbors(4)) == [1, 3, 5, 7]


def test_single_node_mesh_has_no_links():
    topo = MeshTopology(1, 1)
    assert topo.neighbors(0) == []
    assert topo.links() == []


def test_link_count_formula():
    # Directed links: 2 * (w-1)*h + 2 * w*(h-1)
    topo = MeshTopology(4, 3)
    expected = 2 * (4 - 1) * 3 + 2 * 4 * (3 - 1)
    assert len(topo.links()) == expected


def test_invalid_dimensions_rejected():
    with pytest.raises(ValueError):
        MeshTopology(0, 3)
    with pytest.raises(ValueError):
        MeshTopology(3, -1)


def test_out_of_range_node_rejected():
    topo = MeshTopology(2, 2)
    with pytest.raises(ValueError):
        topo.coordinates(4)
    with pytest.raises(ValueError):
        topo.node_at(2, 0)


@given(
    st.integers(min_value=1, max_value=10),
    st.integers(min_value=1, max_value=10),
    st.data(),
)
def test_distance_is_a_metric(width, height, data):
    topo = MeshTopology(width, height)
    a = data.draw(st.integers(min_value=0, max_value=topo.node_count - 1))
    b = data.draw(st.integers(min_value=0, max_value=topo.node_count - 1))
    c = data.draw(st.integers(min_value=0, max_value=topo.node_count - 1))
    assert topo.distance(a, a) == 0
    assert topo.distance(a, b) == topo.distance(b, a)
    assert topo.distance(a, c) <= topo.distance(a, b) + topo.distance(b, c)
    if a != b:
        assert topo.distance(a, b) >= 1


@given(st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=8))
def test_neighbors_are_symmetric(width, height):
    topo = MeshTopology(width, height)
    for node in range(topo.node_count):
        for neighbor in topo.neighbors(node):
            assert node in topo.neighbors(neighbor)
