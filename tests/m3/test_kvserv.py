"""The kv service tier: store semantics, replication, session routing."""

import pytest

from repro.m3.kernel.kernel import SyscallError
from repro.m3.services.kvserv import KvClient, KvError, start_kv_tier
from repro.m3.system import M3System


@pytest.fixture
def kv_system():
    system = M3System(pe_count=6).boot(with_fs=False)
    servers = start_kv_tier(system)
    return system, servers


def test_put_get_delete_roundtrip(kv_system):
    system, servers = kv_system

    def app(env):
        client = yield from KvClient.connect(env, "kv")
        stored = yield from client.put("user:7", b"alice")
        hit = yield from client.get("user:7")
        miss = yield from client.get("user:8")
        deleted = yield from client.delete("user:7")
        re_deleted = yield from client.delete("user:7")
        return stored, bytes(hit), miss, deleted, re_deleted

    assert system.run_app(app) == (5, b"alice", None, True, False)
    server = servers[0]
    assert server.gets == 2 and server.puts == 1 and server.deletes == 2
    assert server.misses == 2  # one get miss, one double delete
    assert server.bytes_stored == 0


def test_oversized_value_and_empty_key_rejected(kv_system):
    system, _servers = kv_system

    def app(env):
        client = yield from KvClient.connect(env, "kv")
        errors = []
        for key, value in (("big", b"x" * 400), ("", b"v")):
            try:
                yield from client.put(key, value)
            except KvError as exc:
                errors.append(str(exc))
        return errors

    errors = system.run_app(app)
    assert "too large" in errors[0]
    assert "empty key" in errors[1]


def test_close_reclaims_the_session(kv_system):
    system, servers = kv_system

    def app(env):
        client = yield from KvClient.connect(env, "kv")
        yield from client.put("k", b"v")
        yield from client.close()
        try:
            yield from client.get("k")
            return "closed session still served"
        except KvError as exc:
            return str(exc)

    assert system.run_app(app) == "no such session"
    assert servers[0].sessions == {}
    assert servers[0].sessions_opened == 1
    assert servers[0].sessions_closed == 1


def test_tier_replicates_across_domains_round_robin():
    """Four sessions against the logical name spread 2/2 over the two
    replicas, and data written through one session is readable through
    another session landing on the same replica (shared store)."""
    system = M3System(pe_count=12, kernel_count=2).boot(with_fs=False)
    servers = start_kv_tier(system)
    assert [s.service_name for s in servers] == ["kv0", "kv1"]

    def app(env):
        clients = []
        for _ in range(4):
            clients.append((yield from KvClient.connect(env, "kv")))
        # 0 and 2 land on kv0, 1 and 3 on kv1 (round-robin from the
        # client's kernel, domain 0).
        yield from clients[0].put("shared", b"from-c0")
        via_same_replica = yield from clients[2].get("shared")
        via_other_replica = yield from clients[1].get("shared")
        for client in clients:
            yield from client.close()
        return bytes(via_same_replica), via_other_replica

    same, other = system.run_app(app)
    assert same == b"from-c0"
    assert other is None  # replicas are independent shards
    assert servers[0].sessions_opened == 2
    assert servers[1].sessions_opened == 2
    assert system.kernel.route_counts == {"kv0": 2, "kv1": 2}
    # every session was reclaimed, on both sides of the ik path
    assert servers[0].sessions == {} and servers[1].sessions == {}


def test_router_skips_dead_domains():
    system = M3System(pe_count=12, kernel_count=2).boot(with_fs=False)
    start_kv_tier(system)
    # Simulate a failed-over peer: domain 1 is marked dead.
    system.kernel.dead_peers.add(1)
    system.kernel._remote_services.pop("kv1", None)

    def app(env):
        replicas = []
        for _ in range(3):
            client = yield from KvClient.connect(env, "kv")
            yield from client.put("probe", b"x")
            yield from client.close()
        return replicas

    system.run_app(app)
    # All three sessions landed on the surviving replica.
    assert system.kernel.route_counts == {"kv0": 3}


def test_route_registration_validation():
    system = M3System(pe_count=6).boot(with_fs=False)
    with pytest.raises(ValueError, match="at least one replica"):
        system.kernel.register_route("kv", [])
    with pytest.raises(ValueError, match="cannot contain itself"):
        system.kernel.register_route("kv", [("kv", 0)])
    with pytest.raises(ValueError, match="unknown domain"):
        system.kernel.register_route("kv", [("kv0", 3)])


def test_unrouted_names_resolve_to_themselves():
    system = M3System(pe_count=6).boot(with_fs=False)
    start_kv_tier(system)

    def app(env):
        # The concrete replica name still works directly.
        client = yield from KvClient.connect(env, "kv0")
        yield from client.put("direct", b"1")
        yield from client.close()
        try:
            yield from env.syscall("open_session", "nope")
        except SyscallError as exc:
            return str(exc)

    assert "no service" in system.run_app(app)
