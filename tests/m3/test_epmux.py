"""Endpoint multiplexing: more gates than the DTU has endpoints."""

import pytest

from repro.dtu.registers import MemoryPerm
from repro.m3.lib.gate import MemGate


def test_many_gates_share_few_endpoints(system):
    """With 8 EPs (2 reserved), 10 memory gates must multiplex over 6
    endpoints — libm3 re-activates on demand (Section 4.5.4)."""

    def app(env):
        gates = []
        for index in range(10):
            gate = yield from MemGate.create(env, 1024, MemoryPerm.RW.value)
            yield from gate.write(0, bytes([index]) * 16)
            gates.append(gate)
        # Round-robin over all gates: every pass forces evictions.
        for _round in range(3):
            for index, gate in enumerate(gates):
                data = yield from gate.read(0, 16)
                assert data == bytes([index]) * 16
        return env.epmux.activations

    activations = system.run_app(app)
    # 10 gates, 6 slots: at least one eviction-driven reactivation per
    # round beyond the initial bindings.
    assert activations > 10


def test_bound_gate_reuses_endpoint_without_syscalls(system):
    def app(env):
        gate = yield from MemGate.create(env, 1024, MemoryPerm.RW.value)
        yield from gate.write(0, b"warm")
        syscalls_before = env.syscall_count
        for _ in range(5):
            yield from gate.read(0, 4)
        return env.syscall_count - syscalls_before

    assert system.run_app(app) == 0  # the binding is cached


def test_eviction_is_lru(system):
    def app(env):
        gates = []
        for index in range(7):  # one more than the 6 free endpoints
            gate = yield from MemGate.create(env, 1024, MemoryPerm.RW.value)
            gates.append(gate)
        for gate in gates[:6]:  # bind the first six
            yield from gate.read(0, 1)
        yield from gates[0].read(0, 1)  # refresh gate 0
        yield from gates[6].read(0, 1)  # must evict gate 1 (LRU), not 0
        assert gates[0].ep is not None
        assert gates[1].ep is None
        return ()

    system.run_app(app)


def test_pinned_receive_gates_never_evicted(system):
    from repro.m3.lib.gate import RecvGate

    def app(env):
        rgate = yield from RecvGate.create(env)
        pinned_ep = rgate.ep
        for _ in range(12):  # plenty of pressure
            gate = yield from MemGate.create(env, 512, MemoryPerm.RW.value)
            yield from gate.read(0, 1)
        assert rgate.ep == pinned_ep
        return ()

    system.run_app(app)
