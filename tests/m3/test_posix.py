"""The POSIX emulation layer (Section 7 future work, implemented)."""

import pytest

from repro.m3.lib.pipe import PipeWriter
from repro.m3.lib.posix import (
    O_CREAT,
    O_RDONLY,
    O_RDWR,
    O_TRUNC,
    O_WRONLY,
    SEEK_END,
    SEEK_SET,
    Posix,
)
from repro.m3.services.m3fs.fs import FsError


def test_classic_file_lifecycle(fs_system):
    def app(env):
        posix = Posix(env)
        fd = yield from posix.open("/notes.txt", O_WRONLY | O_CREAT)
        yield from posix.write(fd, b"dear diary, ")
        yield from posix.write(fd, b"the DTU was fast today")
        yield from posix.close(fd)
        fd = yield from posix.open("/notes.txt", O_RDONLY)
        yield from posix.lseek(fd, 12, SEEK_SET)
        data = yield from posix.read(fd, 100)
        yield from posix.lseek(fd, -5, SEEK_END)
        tail = yield from posix.read(fd, 5)
        yield from posix.close(fd)
        st = yield from posix.stat("/notes.txt")
        return data, tail, st

    data, tail, st = fs_system.run_app(app)
    assert data == b"the DTU was fast today"
    assert tail == b"today"
    assert (st.st_kind, st.st_size, st.st_nlink) == ("file", 34, 1)


def test_directory_calls(fs_system):
    def app(env):
        posix = Posix(env)
        yield from posix.mkdir("/home")
        fd = yield from posix.open("/home/f", O_WRONLY | O_CREAT)
        yield from posix.close(fd)
        yield from posix.link("/home/f", "/home/g")
        names = yield from posix.listdir("/home")
        yield from posix.unlink("/home/f")
        after = yield from posix.listdir("/home")
        return names, after

    assert fs_system.run_app(app) == (["f", "g"], ["g"])


def test_bad_fd_and_espipe(fs_system):
    def app(env):
        posix = Posix(env)
        errors = []
        try:
            yield from posix.read(42, 1)
        except FsError:
            errors.append("ebadf")
        read_fd, write_fd = yield from posix.pipe()
        try:
            yield from posix.lseek(read_fd, 0)
        except FsError:
            errors.append("espipe")
        try:
            yield from posix.write(read_fd, b"x")
        except FsError:
            errors.append("wrong-end")
        return errors

    assert fs_system.run_app(app) == ["ebadf", "espipe", "wrong-end"]


def test_dup_shares_offset(fs_system):
    def app(env):
        posix = Posix(env)
        fd = yield from posix.open("/d", O_RDWR | O_CREAT)
        yield from posix.write(fd, b"0123456789")
        dup_fd = posix.dup(fd)
        yield from posix.lseek(fd, 2, SEEK_SET)
        return (yield from posix.read(dup_fd, 3))

    assert fs_system.run_app(app) == b"234"  # same open object, same offset


def test_pipe_and_spawn_like_a_shell(fs_system):
    """The full POSIX idiom: pipe(2), spawn a producer with the write
    end, parent consumes the read end, waitpid."""

    def producer(env, greeting, handoff):
        writer = yield from PipeWriter.attach(env, *handoff)
        yield from writer.write(f"{greeting} from the child".encode())
        yield from writer.close()
        return 0

    fs_system.register_program("producer", producer)

    def parent(env):
        posix = Posix(env)
        # install the producer "binary"
        fd = yield from posix.open("/producer", O_WRONLY | O_CREAT)
        yield from posix.write(fd, b"\x7fELF" + bytes(500))
        yield from posix.close(fd)

        read_fd, write_fd = yield from posix.pipe()
        child = yield from posix.spawn(
            "/producer", "hello", pass_fds=(write_fd,)
        )
        yield from posix.close(write_fd)  # delegated: a no-op locally
        data = bytearray()
        while True:
            chunk = yield from posix.read(read_fd, 64)
            if not chunk:
                break
            data.extend(chunk)
        status = yield from posix.waitpid(child)
        return bytes(data), status

    data, status = fs_system.run_app(parent)
    assert data == b"hello from the child"
    assert status == 0


def test_passed_write_end_is_unusable_locally(fs_system):
    def producer(env, handoff):
        writer = yield from PipeWriter.attach(env, *handoff)
        yield from writer.close()
        return 0

    fs_system.register_program("producer2", producer)

    def parent(env):
        posix = Posix(env)
        fd = yield from posix.open("/producer2", O_WRONLY | O_CREAT)
        yield from posix.write(fd, bytes(100))
        yield from posix.close(fd)
        read_fd, write_fd = yield from posix.pipe()
        child = yield from posix.spawn("/producer2", pass_fds=(write_fd,))
        try:
            yield from posix.write(write_fd, b"nope")
        except FsError as exc:
            result = str(exc)
        while (yield from posix.read(read_fd, 64)):
            pass
        yield from posix.waitpid(child)
        return result

    assert "passed to a child" in fs_system.run_app(parent)
