"""End-to-end causal tracing: context crosses PEs and kernel domains.

The trace context rides in the DTU message-header padding, so a
request recorded on the client PE, the kernel PE(s), and the service
PE assembles into one tree — including across the inter-kernel
protocol when the session lives in another domain.
"""

from repro.m3.kernel import syscalls
from repro.m3.lib.m3fs_client import M3fsClient
from repro.m3.system import M3System
from repro.obs import causal


def _noop_system() -> M3System:
    system = M3System(pe_count=4, observe=True).boot(with_fs=False)

    def app(env):
        yield from env.syscall(syscalls.NOOP)
        return 0

    system.run_app(app, name="client")
    return system


def _cross_domain_system(observe: bool) -> M3System:
    system = M3System(
        pe_count=8, kernel_count=2, observe=observe
    ).boot(with_fs=False)
    system.start_m3fs(name="m3fs", domain=0)

    def app(env):
        yield from M3fsClient.connect(env, service="m3fs")
        return 0

    system.wait(system.spawn(app, name="remote-open", domain=1))
    return system


def test_syscall_trace_links_client_kernel_and_transfers():
    system = _noop_system()
    request = causal.find_request(system.sim.obs, "noop")
    assert {span.category for span in request.spans} >= {
        "syscall-client", "syscall", "dtu", "noc"
    }
    assert {span.trace_id for span in request.spans} == {request.trace_id}
    # The kernel's handler hangs off the client root *via* the request
    # message's DTU span — the causal edge carried in the header.
    spans = {span.span_id: span for span in request.spans}
    kernel = next(s for s in request.spans if s.category == "syscall")
    message = spans[kernel.parent_id]
    assert message.category == "dtu" and message.name == "message"
    assert spans[message.parent_id] is request.root
    # ... and the reply rides back under the kernel span.
    reply = next(s for s in request.spans
                 if s.category == "dtu" and s.name == "reply")
    assert reply.parent_id == kernel.span_id


def test_each_syscall_is_its_own_trace():
    system = M3System(pe_count=4, observe=True).boot(with_fs=False)

    def app(env):
        for _ in range(3):
            yield from env.syscall(syscalls.NOOP)
        return 0

    system.run_app(app, name="client")
    roots = [request for request in causal.assemble_requests(system.sim.obs)
             if request.root.name == "noop"
             and request.root.category == "syscall-client"]
    assert len(roots) == 3
    assert len({request.trace_id for request in roots}) == 3


def test_cross_domain_open_session_records_ik_spans():
    system = _cross_domain_system(observe=True)
    request = causal.find_request(system.sim.obs, "open_session")
    ik = [span for span in request.spans if span.category == "ik"]
    assert {span.name for span in ik} >= {
        "srv_open", "srv_open.finish", "ik_reply"
    }
    nodes = {span.node for span in request.spans}
    # The request touched the client PE, both kernels, and the service.
    assert {kernel.node for kernel in system.kernels} <= nodes
    service = next(s for s in request.spans if s.category == "m3fs")
    assert service.trace_id == request.trace_id


def test_cross_domain_critical_path_shows_inter_kernel_hops():
    system = _cross_domain_system(observe=True)
    request = causal.find_request(system.sim.obs, "open_session")
    segments = causal.critical_path(request)
    assert sum(segment.cycles for segment in segments) == request.total_cycles
    breakdown = causal.component_breakdown(segments)
    assert breakdown.get("inter-kernel", 0) > 0
    assert breakdown.get("service", 0) > 0
    assert breakdown.get("other", 0) <= 0.05 * request.total_cycles


def test_observability_does_not_change_multikernel_timing():
    traced = _cross_domain_system(observe=True)
    plain = _cross_domain_system(observe=False)
    assert plain.sim.obs is None
    assert traced.sim.now == plain.sim.now
