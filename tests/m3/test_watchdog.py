"""Kernel watchdog: failure detection, recovery, and non-interference."""

import pytest

from repro.faults import FaultPlan
from repro.m3.kernel.kernel import SyscallError
from repro.m3.kernel.vpe import VpeState
from repro.m3.lib.vpe import VPE
from repro.m3.system import M3System

KILL_AT = 6_000
PERIOD = 2_000
PROBE_TIMEOUT = 1_500


def _system(pe_count=4, kill_node=None, kill_at=KILL_AT):
    system = M3System(pe_count=pe_count, reliable=True)
    plan = FaultPlan(seed=42)
    if kill_node is not None:
        plan.kill_pe(node=kill_node, at=kill_at)
    plan.install(system.platform)
    system.boot(with_fs=False)
    return system


def _immortal_child(env):
    while True:
        yield env.pe.compute(500)


def test_watchdog_detects_kill_and_fails_the_wait():
    # Node allocation is deterministic: kernel=0, parent=1, victim=2.
    system = _system(kill_node=2)
    system.kernel.start_watchdog(period=PERIOD, probe_timeout=PROBE_TIMEOUT)

    def parent(env):
        vpe = yield from VPE.create(env, "victim")
        yield from vpe.run(_immortal_child)
        with pytest.raises(SyscallError, match="victim.*failed"):
            yield from vpe.wait()
        return env.sim.now

    unblocked_at = system.run_app(parent, name="parent")
    system.kernel.stop_watchdog()
    assert unblocked_at > KILL_AT
    assert system.kernel.recoveries == 1
    assert system.kernel.probes_sent >= 1


def test_recovery_quarantines_pe_and_revokes_caps():
    system = _system(kill_node=2)
    system.kernel.start_watchdog(period=PERIOD, probe_timeout=PROBE_TIMEOUT)

    def parent(env):
        vpe = yield from VPE.create(env, "victim")
        yield from vpe.run(_immortal_child)
        try:
            yield from vpe.wait()
        except SyscallError:
            pass
        # Allocation after recovery must avoid the quarantined node 2.
        replacement = yield from VPE.create(env, "replacement")

        def quick(env2):
            yield env2.compute(10)
            return env2.pe.node

        yield from replacement.run(quick)
        return (yield from replacement.wait())

    replacement_node = system.run_app(parent, name="parent")
    system.kernel.stop_watchdog()
    assert system.platform.pe(2).failed
    assert replacement_node not in (0, 1, 2)
    victim = next(
        v for v in system.kernel.vpes.values() if v.name == "victim"
    )
    assert victim.state is VpeState.DEAD
    assert victim.failed
    # Every capability the victim held was revoked out of its table.
    assert all(cap.table is None for cap in victim.captable.caps())


def test_healthy_sibling_is_untouched_by_recovery():
    system = _system(pe_count=5, kill_node=2)
    system.kernel.start_watchdog(period=PERIOD, probe_timeout=PROBE_TIMEOUT)

    def worker(env):
        yield env.pe.compute(60_000)
        return "survived"

    def parent(env):
        doomed = yield from VPE.create(env, "doomed")     # gets node 2
        yield from doomed.run(_immortal_child)
        healthy = yield from VPE.create(env, "healthy")   # gets node 3
        yield from healthy.run(worker)
        with pytest.raises(SyscallError):
            yield from doomed.wait()
        return (yield from healthy.wait())

    assert system.run_app(parent, name="parent") == "survived"
    system.kernel.stop_watchdog()
    assert system.kernel.recoveries == 1
    assert not system.platform.pe(3).failed


def test_recovery_dumps_the_flight_recorder():
    """A watchdog kill is a failure verdict: with the flight recorder
    on, recovery freezes the black box for the victim's domain."""
    system = M3System(pe_count=4, reliable=True, observe=True)
    plan = FaultPlan(seed=42)
    plan.kill_pe(node=2, at=KILL_AT)
    plan.install(system.platform)
    system.boot(with_fs=False)
    flight = system.enable_flight_recorder()
    system.kernel.start_watchdog(period=PERIOD, probe_timeout=PROBE_TIMEOUT)

    def parent(env):
        vpe = yield from VPE.create(env, "victim")
        yield from vpe.run(_immortal_child)
        try:
            yield from vpe.wait()
        except SyscallError:
            pass
        return "done"

    system.run_app(parent, name="parent")
    system.kernel.stop_watchdog()
    assert len(flight.dumps) == 1
    dump = flight.dumps[0]
    assert "watchdog recovers VPE" in dump["reason"]
    assert "victim" in dump["reason"]
    assert dump["domain"] == 0
    # The ring holds the probes that led to the verdict.
    names = [i.name for i in dump["instants"].get(0, [])]
    assert "recover" in names


def test_watchdog_leaves_healthy_system_alone():
    system = _system()  # no faults at all
    system.kernel.start_watchdog(period=PERIOD, probe_timeout=PROBE_TIMEOUT)

    def parent(env):
        vpe = yield from VPE.create(env, "worker")

        def worker(env2):
            yield env2.pe.compute(3 * PERIOD)
            return 13

        yield from vpe.run(worker)
        return (yield from vpe.wait())

    assert system.run_app(parent, name="parent") == 13
    system.kernel.stop_watchdog()
    assert system.kernel.recoveries == 0
    assert system.kernel.probes_sent >= 1  # it did probe, found life


def test_stop_watchdog_stops_probing():
    system = _system()
    system.kernel.start_watchdog(period=PERIOD, probe_timeout=PROBE_TIMEOUT)

    def parent(env):
        vpe = yield from VPE.create(env, "worker")

        def worker(env2):
            yield env2.pe.compute(2 * PERIOD)
            return ()

        yield from vpe.run(worker)
        yield from vpe.wait()
        return ()

    system.run_app(parent, name="parent")
    system.kernel.stop_watchdog()
    after_stop = system.kernel.probes_sent
    watchdog = system.kernel._watchdog

    def idle(env):
        yield env.compute(5 * PERIOD)
        return ()

    system.run_app(idle, name="idle")
    assert system.kernel.probes_sent == after_stop
    assert not watchdog.alive  # the loop actually exited


def test_double_start_rejected():
    system = _system()
    system.kernel.start_watchdog(period=PERIOD, probe_timeout=PROBE_TIMEOUT)
    with pytest.raises(RuntimeError):
        system.kernel.start_watchdog()
    system.kernel.stop_watchdog()
