"""The Serial stream (the paper's VPE::run example prints through it)."""

from repro.m3.lib import serial
from repro.m3.lib.vpe import VPE


def test_paper_lambda_example(system):
    """The verbatim Section 4.5.5 example: run a lambda capturing
    arguments on another PE, print the sum over serial, return 0."""

    a, b = 4, 5

    def lambda_body(env, a, b):
        s = serial.get(env)
        s << "Sum: " << (a + b) << "\n"
        return 0
        yield  # pragma: no cover

    def parent(env):
        vpe = yield from VPE.create(env, "test")
        yield from vpe.run(lambda_body, a, b)
        return (yield from vpe.wait())

    assert system.run_app(parent) == 0
    lines = [line for _t, _vpe, line in system.serial_log]
    assert lines == ["Sum: 9"]


def test_serial_line_buffering(system):
    def app(env):
        s = serial.get(env)
        s << "partial"
        assert system.serial_log == []  # nothing until newline
        s << " line\nsecond\n"
        s << "tail"
        s.flush()
        return ()
        yield  # pragma: no cover

    system.run_app(app)
    lines = [line for _t, _vpe, line in system.serial_log]
    assert lines == ["partial line", "second", "tail"]


def test_serial_records_vpe_and_time(system):
    def app(env):
        yield env.compute(123)
        serial.get(env) << "hello\n"
        return env.vpe_id

    vpe_id = system.run_app(app)
    stamp, writer, line = system.serial_log[0]
    assert writer == vpe_id
    assert line == "hello"
    assert stamp >= 123
