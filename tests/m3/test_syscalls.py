"""Syscall-level integration tests (application <-> kernel over DTUs)."""

import pytest

from repro.dtu.registers import MemoryPerm
from repro.m3.kernel import syscalls
from repro.m3.kernel.kernel import SyscallError
from repro.m3.lib.gate import MemGate


def test_noop_syscall_roundtrip(system):
    def app(env):
        result = yield from env.syscall(syscalls.NOOP)
        return result

    assert system.run_app(app) == ()
    assert system.kernel.syscall_count >= 1


def test_noop_syscall_cost_near_paper_value(system):
    """Section 5.3: "a system call on M3 via DTU takes about 200 cycles"."""

    def app(env):
        start = env.sim.now
        yield from env.syscall(syscalls.NOOP)
        return env.sim.now - start

    cycles = system.run_app(app)
    assert 150 <= cycles <= 260, f"null syscall took {cycles} cycles"


def test_unknown_syscall_reports_error(system):
    def app(env):
        try:
            yield from env.syscall("frobnicate")
        except SyscallError as exc:
            return str(exc)

    assert "frobnicate" in system.run_app(app)


def test_request_mem_and_rdma_roundtrip(system):
    def app(env):
        gate = yield from MemGate.create(env, 4096, MemoryPerm.RW.value)
        yield from gate.write(100, b"dram payload")
        return (yield from gate.read(100, 12))

    assert system.run_app(app) == b"dram payload"


def test_request_mem_allocations_are_disjoint(system):
    def app(env):
        a = yield from MemGate.create(env, 4096, MemoryPerm.RW.value)
        b = yield from MemGate.create(env, 4096, MemoryPerm.RW.value)
        yield from a.write(0, b"A" * 16)
        yield from b.write(0, b"B" * 16)
        return (yield from a.read(0, 16))

    assert system.run_app(app) == b"A" * 16


def test_derive_mem_restricts_window(system):
    def app(env):
        gate = yield from MemGate.create(env, 4096, MemoryPerm.RW.value)
        yield from gate.write(256, b"hello sub-region")
        sub = yield from gate.derive(256, 64, MemoryPerm.READ.value)
        data = yield from sub.read(0, 16)
        try:
            yield from sub.write(0, b"nope")
        except Exception as exc:
            return (data, type(exc).__name__)

    data, error = system.run_app(app)
    assert data == b"hello sub-region"
    assert error == "NoPermission"


def test_derive_mem_cannot_widen_permissions(system):
    def app(env):
        gate = yield from MemGate.create(env, 4096, MemoryPerm.READ.value)
        try:
            yield from gate.derive(0, 64, MemoryPerm.RW.value)
        except SyscallError as exc:
            return str(exc)

    assert "widen" in system.run_app(app)


def test_activate_rejects_bad_endpoint(system):
    def app(env):
        try:
            yield from env.syscall(syscalls.ACTIVATE, 99, 0)
        except SyscallError as exc:
            return str(exc)

    assert "out of range" in system.run_app(app)


def test_activate_rejects_vpe_capability(system):
    from repro.m3.lib.vpe import VPE

    def app(env):
        child = yield from VPE.create(env, "c")
        try:
            yield from env.syscall(syscalls.ACTIVATE, 2, child.selector)
        except SyscallError as exc:
            return str(exc)

    assert "cannot activate" in system.run_app(app)


def test_rgate_sgate_messaging_between_apps(system):
    """Two applications, channel set up by syscalls, then direct."""
    from repro.m3.lib.gate import RecvGate, SendGate

    def receiver(env, results):
        rgate = yield from RecvGate.create(env, slot_size=128, slot_count=4)
        sgate_sel = yield from env.syscall(
            syscalls.CREATE_SGATE, rgate.selector, 0x42, 4
        )
        results["sgate_sel"] = sgate_sel
        results["rgate"] = rgate
        slot, message = yield from rgate.receive()
        rgate.ack(slot)
        return (message.label, message.payload)

    results = {}
    receiver_vpe = system.spawn(receiver, results, name="receiver")
    system.sim.run()  # until receiver blocks on its gate

    def sender(env):
        # In a real system the selector arrives via delegation; the
        # test shortcut transplants it through the kernel's table.
        recv_vpe = system.kernel.vpes[receiver_vpe.id]
        cap = recv_vpe.captable.get(results["sgate_sel"])
        own_sel = system.kernel.vpes[env.vpe_id].captable.insert(cap.derive())
        sgate = SendGate(env, own_sel)
        yield from sgate.send(("direct", 1), 32)

    system.run_app(sender, name="sender")
    label, payload = system.wait(receiver_vpe)
    assert label == 0x42
    assert payload == ("direct", 1)


def test_revoke_tears_down_memory_access(system):
    from repro.m3.lib.vpe import VPE

    def parent(env):
        gate = yield from MemGate.create(env, 4096, MemoryPerm.RW.value)
        yield from gate.write(0, b"secret")
        child = yield from VPE.create(env, "child")
        child_sel = yield from child.delegate(gate.selector)
        yield from child.run(child_reader, child_sel)
        yield 2000  # let the child read once
        yield from env.syscall(syscalls.REVOKE, gate.selector)
        return (yield from child.wait())

    def child_reader(env, mem_sel):
        gate = MemGate(env, mem_sel, 4096)
        first = yield from gate.read(0, 6)
        yield 4000  # revocation happens here
        try:
            yield from gate.read(0, 6)
            return (first, "still-works")
        except Exception as exc:
            return (first, type(exc).__name__)

    first, second = system.run_app(parent, name="parent")
    assert first == b"secret"
    assert second == "NoPermission"
