"""The network service: datagrams through NICs, a wire, and sessions."""

import pytest

from repro.m3.system import M3System
from repro.m3.services.netserv import NetClient, start_network


@pytest.fixture
def net_system():
    system = M3System(pe_count=6).boot(with_fs=False)
    servers = start_network(system)
    return system, servers


def test_datagram_crosses_the_wire(net_system):
    system, servers = net_system

    def receiver(env):
        client = yield from NetClient.connect(env, "net2")
        yield from client.request("bind", 9)
        src, payload = yield from client.recv_blocking()
        return src, bytes(payload)

    def sender(env):
        client = yield from NetClient.connect(env, "net")
        yield from client.request("bind", 7)
        yield from client.request("send_to", 9, b"hello over the wire")
        return ()

    receiver_vpe = system.spawn(receiver, name="rx-app")
    # bounded: the receiver polls forever, so "run until idle" never is
    system.sim.run(until=system.sim.now + 30_000)
    system.run_app(sender, name="tx-app")
    src, payload = system.wait(receiver_vpe)
    assert (src, payload) == (7, b"hello over the wire")
    assert servers[0].frames_dropped == 0
    assert servers[1].frames_routed == 1


def test_ping_pong_round_trip(net_system):
    system, _servers = net_system

    def ponger(env):
        client = yield from NetClient.connect(env, "net2")
        yield from client.request("bind", 20)
        src, payload = yield from client.recv_blocking()
        yield from client.request("send_to", src, b"pong:" + bytes(payload))
        return ()

    def pinger(env):
        client = yield from NetClient.connect(env, "net")
        yield from client.request("bind", 10)
        yield from client.request("send_to", 20, b"ping-1")
        src, payload = yield from client.recv_blocking()
        return src, bytes(payload)

    ponger_vpe = system.spawn(ponger, name="ponger")
    system.sim.run(until=system.sim.now + 30_000)
    src, payload = system.run_app(pinger, name="pinger")
    assert (src, payload) == (20, b"pong:ping-1")
    system.wait(ponger_vpe)


def test_unbound_destination_is_dropped(net_system):
    system, servers = net_system

    def sender(env):
        client = yield from NetClient.connect(env, "net")
        yield from client.request("bind", 5)
        yield from client.request("send_to", 4242, b"nobody home")
        yield 50_000  # let the frame arrive and be dropped
        return ()

    system.run_app(sender, name="tx")
    assert servers[1].frames_dropped == 1
    assert servers[1].frames_routed == 0


def test_port_conflicts_and_oversized_datagrams(net_system):
    system, _servers = net_system

    def app(env):
        a = yield from NetClient.connect(env, "net")
        yield from a.request("bind", 30)
        errors = []
        b = yield from NetClient.connect(env, "net")
        try:
            yield from b.request("bind", 30)
        except RuntimeError as exc:
            errors.append("conflict" if "already bound" in str(exc) else "?")
        # 250B fits the request message but exceeds the datagram limit
        try:
            yield from a.request("send_to", 30, b"x" * 250)
        except RuntimeError as exc:
            errors.append("toobig" if "too large" in str(exc) else "?")
        return errors

    assert system.run_app(app) == ["conflict", "toobig"]


def test_frames_move_real_bytes_through_dma(net_system):
    """White-box: the datagram bytes exist in the receiving service's
    DRAM buffer, placed there by the NIC's DMA write."""
    system, servers = net_system

    def receiver(env):
        client = yield from NetClient.connect(env, "net2")
        yield from client.request("bind", 77)
        return (yield from client.recv_blocking())

    def sender(env):
        client = yield from NetClient.connect(env, "net")
        yield from client.request("bind", 70)
        yield from client.request("send_to", 77, b"dma-visible")
        return ()

    receiver_vpe = system.spawn(receiver, name="rx")
    system.sim.run(until=system.sim.now + 30_000)
    system.run_app(sender, name="tx")
    system.wait(receiver_vpe)

    server = servers[1]
    region = server.vpe.captable.get(server.buffer.selector).obj
    dram = system.platform.dram.memory
    from repro.m3.services.netserv import RX_BASE

    raw = dram.read(region.address + RX_BASE, 64)
    assert b"dma-visible" in raw


def test_rapid_sends_do_not_clobber_in_flight_frames(net_system):
    """Regression: every frame gets its own TX slot.  The NIC DMA-reads
    a frame *after* acknowledging the command, so back-to-back sends
    through one slot would overwrite frames still being read."""
    system, servers = net_system
    payloads = [b"frame-%d" % i for i in range(4)]

    def receiver(env):
        client = yield from NetClient.connect(env, "net2")
        yield from client.request("bind", 91)
        got = []
        for _ in payloads:
            _src, payload = yield from client.recv_blocking()
            got.append(bytes(payload))
        return got

    def sender(env):
        client = yield from NetClient.connect(env, "net")
        yield from client.request("bind", 90)
        for payload in payloads:
            yield from client.request("send_to", 91, payload)
        return ()

    receiver_vpe = system.spawn(receiver, name="rx")
    system.sim.run(until=system.sim.now + 30_000)
    system.run_app(sender, name="tx")
    assert system.wait(receiver_vpe) == payloads
    assert servers[1].frames_routed == len(payloads)
    assert servers[1].frames_dropped == 0
    # all slots returned to the free list once the txdone irqs drained
    system.sim.run(until=system.sim.now + 30_000)
    assert sorted(servers[0]._tx_free) == list(range(8))


def test_concurrent_sessions_share_the_tx_ring(net_system):
    """Two client sessions sending at the same time: all datagrams
    arrive intact, none truncated or cross-wired."""
    system, servers = net_system

    def receiver(env):
        client = yield from NetClient.connect(env, "net2")
        yield from client.request("bind", 80)
        got = set()
        for _ in range(4):
            src, payload = yield from client.recv_blocking()
            got.add((src, bytes(payload)))
        return sorted(got)

    def sender(env, port, tag):
        client = yield from NetClient.connect(env, "net")
        yield from client.request("bind", port)
        for index in range(2):
            yield from client.request(
                "send_to", 80, b"%s-%d" % (tag, index)
            )
        return ()

    receiver_vpe = system.spawn(receiver, name="rx")
    system.sim.run(until=system.sim.now + 30_000)
    a = system.spawn(sender, 71, b"alpha", name="tx-a")
    b = system.spawn(sender, 72, b"beta", name="tx-b")
    system.wait(a)
    system.wait(b)
    assert system.wait(receiver_vpe) == [
        (71, b"alpha-0"), (71, b"alpha-1"),
        (72, b"beta-0"), (72, b"beta-1"),
    ]
    assert servers[1].frames_dropped == 0


def test_runt_frame_is_dropped_not_crashing(net_system):
    """Regression: a frame shorter than the port header is counted as
    dropped instead of killing the service with a struct.error."""
    system, servers = net_system
    nic0 = servers[0].nic
    nic0.wire.transmit(nic0, b"xy")  # 2 bytes: no room for <HH
    system.sim.run(until=system.sim.now + 30_000)
    assert servers[1].frames_dropped == 1
    assert servers[1].frames_routed == 0

    # the service survived and still routes well-formed datagrams
    def receiver(env):
        client = yield from NetClient.connect(env, "net2")
        yield from client.request("bind", 60)
        return (yield from client.recv_blocking())

    def sender(env):
        client = yield from NetClient.connect(env, "net")
        yield from client.request("bind", 61)
        yield from client.request("send_to", 60, b"still alive")
        return ()

    receiver_vpe = system.spawn(receiver, name="rx")
    system.sim.run(until=system.sim.now + 30_000)
    system.run_app(sender, name="tx")
    src, payload = system.wait(receiver_vpe)
    assert (src, bytes(payload)) == (61, b"still alive")


def test_tx_slot_survives_send_failure(net_system):
    """Regression: a failure after the TX slot is popped (buffer write
    or NIC command send raising) must return the slot to the free list.
    Pre-fix, each error leaked one slot and the ring drained to empty,
    wedging the service with "tx ring full" forever."""
    from repro.m3.services.netserv import TX_SLOTS

    system, servers = net_system
    server = servers[0]
    real_nic_cmd = server.nic_cmd

    class WedgedGate:
        def call(self, payload, reply_gate, length=None):
            raise ValueError("nic wedged")
            yield  # pragma: no cover - generator shape

    def app(env):
        client = yield from NetClient.connect(env, "net")
        yield from client.request("bind", 40)
        # Drive one failing send per TX slot, plus one more: pre-fix
        # the ring is empty after TX_SLOTS errors and the final error
        # flips from "nic wedged" to "tx ring full".
        server.nic_cmd = WedgedGate()
        errors = []
        for _ in range(TX_SLOTS + 1):
            try:
                yield from client.request("send_to", 41, b"doomed")
            except RuntimeError as exc:
                errors.append(str(exc))
        server.nic_cmd = real_nic_cmd
        # The ring must be whole again: a real send still goes out.
        sent = yield from client.request("send_to", 41, b"recovered")
        return errors, sent

    errors, sent = system.run_app(app, name="tx-err")
    assert errors == ["nic wedged"] * (TX_SLOTS + 1)
    assert sent == len(b"recovered")
    system.sim.run(until=system.sim.now + 30_000)  # drain txdone
    assert sorted(server._tx_free) == list(range(TX_SLOTS))


def test_tx_command_credits_are_refunded(net_system):
    """Regression: the NIC command gate has finite credits and the NIC
    used to *ack* tx commands without replying, so credits never came
    back — any netserv instance went silent after max_credits lifetime
    sends (MissingCredits crashed the service).  The NIC now replies to
    commands, refunding the credit, so the lifetime send count is
    unbounded."""
    system, servers = net_system
    count = 3 * 8 + 1  # well past any plausible credit budget

    def receiver(env):
        client = yield from NetClient.connect(env, "net2")
        yield from client.request("bind", 95)
        got = 0
        for _ in range(count):
            yield from client.recv_blocking()
            got += 1
        return got

    def sender(env):
        client = yield from NetClient.connect(env, "net")
        yield from client.request("bind", 94)
        for index in range(count):
            yield from client.request("send_to", 95, b"n%d" % index)
        return ()

    receiver_vpe = system.spawn(receiver, name="rx")
    system.sim.run(until=system.sim.now + 30_000)
    system.run_app(sender, name="tx")
    assert system.wait(receiver_vpe) == count
    assert servers[0].nic.frames_sent == count


def test_full_inbox_drops_and_counts(net_system):
    """Regression: a socket that never drains its inbox must not grow
    it without bound — frames beyond the configured depth are dropped
    and counted in frames_dropped."""
    system, servers = net_system
    receiver_server = servers[1]
    receiver_server.inbox_depth = 4

    def receiver(env):
        client = yield from NetClient.connect(env, "net2")
        yield from client.request("bind", 55)
        yield 200_000  # never drain: let the sender overrun the inbox
        got = []
        while True:
            datagram = yield from client.request("recv")
            if datagram is None:
                break
            got.append(bytes(datagram[1]))
        return got

    def sender(env):
        client = yield from NetClient.connect(env, "net")
        yield from client.request("bind", 56)
        for index in range(6):  # two more than the inbox holds
            yield from client.request("send_to", 55, b"flood-%d" % index)
        return ()

    receiver_vpe = system.spawn(receiver, name="rx")
    system.sim.run(until=system.sim.now + 30_000)
    system.run_app(sender, name="tx")
    got = system.wait(receiver_vpe)
    # Exactly the first inbox_depth frames survive, in order.
    assert got == [b"flood-%d" % index for index in range(4)]
    assert receiver_server.frames_dropped == 2
    assert receiver_server.frames_routed == 4


def test_close_reclaims_session_and_port(net_system):
    """Regression: sessions were never reclaimed — no close path meant
    a finished client's socket and bound port leaked forever.  close
    must unbind the port (rebindable by a later client) and drop the
    socket (further requests fail)."""
    system, servers = net_system
    server = servers[0]

    def app(env):
        a = yield from NetClient.connect(env, "net")
        yield from a.request("bind", 50)
        sessions_before = len(server.sockets)
        yield from a.request("close")
        outcomes = [
            len(server.sockets) == sessions_before - 1,
            50 not in server.ports,
        ]
        try:
            yield from a.request("bind", 50)
            outcomes.append("closed session still served")
        except RuntimeError as exc:
            outcomes.append(str(exc))
        # the port is free again: a fresh session can bind it
        b = yield from NetClient.connect(env, "net")
        yield from b.request("bind", 50)
        return outcomes

    socket_dropped, port_unbound, post_close = system.run_app(app)
    assert socket_dropped and port_unbound
    assert post_close == "no such session"


def test_rebind_frees_the_old_port(net_system):
    system, _servers = net_system

    def app(env):
        a = yield from NetClient.connect(env, "net")
        yield from a.request("bind", 50)
        yield from a.request("bind", 51)  # rebinding releases port 50
        b = yield from NetClient.connect(env, "net")
        yield from b.request("bind", 50)  # now free again
        return ()

    system.run_app(app)


def test_unbound_socket_sends_with_source_port_zero(net_system):
    system, _servers = net_system

    def receiver(env):
        client = yield from NetClient.connect(env, "net2")
        yield from client.request("bind", 33)
        return (yield from client.recv_blocking())

    def sender(env):
        client = yield from NetClient.connect(env, "net")
        # no bind: the datagram still goes out, src port 0
        yield from client.request("send_to", 33, b"anon")
        return ()

    receiver_vpe = system.spawn(receiver, name="rx")
    system.sim.run(until=system.sim.now + 30_000)
    system.run_app(sender, name="tx")
    src, payload = system.wait(receiver_vpe)
    assert (src, bytes(payload)) == (0, b"anon")
