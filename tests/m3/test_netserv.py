"""The network service: datagrams through NICs, a wire, and sessions."""

import pytest

from repro.m3.kernel import syscalls
from repro.m3.lib.gate import BoundRecvGate, SendGate
from repro.m3.system import M3System
from repro.m3.services.netserv import start_network


class NetClient:
    """Tiny client-side helper mirroring M3fsClient's request shape."""

    def __init__(self, env, sgate):
        self.env = env
        self.sgate = sgate
        self.reply_gate = BoundRecvGate(env, env.EP_REPLY)

    @classmethod
    def connect(cls, env, service="net"):
        _session_sel, sgate_sel = yield from env.syscall(
            syscalls.OPEN_SESSION, service
        )
        return cls(env, SendGate(env, sgate_sel))

    def request(self, operation, *args):
        message = yield from self.sgate.call((operation, args),
                                             self.reply_gate)
        status, result = message.payload
        if status != "ok":
            raise RuntimeError(result)
        return result

    def recv_blocking(self, poll_cycles=2_000):
        while True:
            datagram = yield from self.request("recv")
            if datagram is not None:
                return datagram
            yield poll_cycles


@pytest.fixture
def net_system():
    system = M3System(pe_count=6).boot(with_fs=False)
    servers = start_network(system)
    return system, servers


def test_datagram_crosses_the_wire(net_system):
    system, servers = net_system

    def receiver(env):
        client = yield from NetClient.connect(env, "net2")
        yield from client.request("bind", 9)
        src, payload = yield from client.recv_blocking()
        return src, bytes(payload)

    def sender(env):
        client = yield from NetClient.connect(env, "net")
        yield from client.request("bind", 7)
        yield from client.request("send_to", 9, b"hello over the wire")
        return ()

    receiver_vpe = system.spawn(receiver, name="rx-app")
    # bounded: the receiver polls forever, so "run until idle" never is
    system.sim.run(until=system.sim.now + 30_000)
    system.run_app(sender, name="tx-app")
    src, payload = system.wait(receiver_vpe)
    assert (src, payload) == (7, b"hello over the wire")
    assert servers[0].frames_dropped == 0
    assert servers[1].frames_routed == 1


def test_ping_pong_round_trip(net_system):
    system, _servers = net_system

    def ponger(env):
        client = yield from NetClient.connect(env, "net2")
        yield from client.request("bind", 20)
        src, payload = yield from client.recv_blocking()
        yield from client.request("send_to", src, b"pong:" + bytes(payload))
        return ()

    def pinger(env):
        client = yield from NetClient.connect(env, "net")
        yield from client.request("bind", 10)
        yield from client.request("send_to", 20, b"ping-1")
        src, payload = yield from client.recv_blocking()
        return src, bytes(payload)

    ponger_vpe = system.spawn(ponger, name="ponger")
    system.sim.run(until=system.sim.now + 30_000)
    src, payload = system.run_app(pinger, name="pinger")
    assert (src, payload) == (20, b"pong:ping-1")
    system.wait(ponger_vpe)


def test_unbound_destination_is_dropped(net_system):
    system, servers = net_system

    def sender(env):
        client = yield from NetClient.connect(env, "net")
        yield from client.request("bind", 5)
        yield from client.request("send_to", 4242, b"nobody home")
        yield 50_000  # let the frame arrive and be dropped
        return ()

    system.run_app(sender, name="tx")
    assert servers[1].frames_dropped == 1
    assert servers[1].frames_routed == 0


def test_port_conflicts_and_oversized_datagrams(net_system):
    system, _servers = net_system

    def app(env):
        a = yield from NetClient.connect(env, "net")
        yield from a.request("bind", 30)
        errors = []
        b = yield from NetClient.connect(env, "net")
        try:
            yield from b.request("bind", 30)
        except RuntimeError as exc:
            errors.append("conflict" if "already bound" in str(exc) else "?")
        # 250B fits the request message but exceeds the datagram limit
        try:
            yield from a.request("send_to", 30, b"x" * 250)
        except RuntimeError as exc:
            errors.append("toobig" if "too large" in str(exc) else "?")
        return errors

    assert system.run_app(app) == ["conflict", "toobig"]


def test_frames_move_real_bytes_through_dma(net_system):
    """White-box: the datagram bytes exist in the receiving service's
    DRAM buffer, placed there by the NIC's DMA write."""
    system, servers = net_system

    def receiver(env):
        client = yield from NetClient.connect(env, "net2")
        yield from client.request("bind", 77)
        return (yield from client.recv_blocking())

    def sender(env):
        client = yield from NetClient.connect(env, "net")
        yield from client.request("bind", 70)
        yield from client.request("send_to", 77, b"dma-visible")
        return ()

    receiver_vpe = system.spawn(receiver, name="rx")
    system.sim.run(until=system.sim.now + 30_000)
    system.run_app(sender, name="tx")
    system.wait(receiver_vpe)

    server = servers[1]
    region = server.vpe.captable.get(server.buffer.selector).obj
    dram = system.platform.dram.memory
    from repro.m3.services.netserv import RX_BASE

    raw = dram.read(region.address + RX_BASE, 64)
    assert b"dma-visible" in raw
