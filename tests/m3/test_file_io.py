"""Integration tests: file I/O through VFS, m3fs, capabilities, and DTUs."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.m3.lib.file import OpenFlags
from repro.m3.services.m3fs.fs import FsError
from repro.m3.system import M3System


def _roundtrip(system, payload, chunk=4096):
    def app(env):
        f = yield from env.vfs.open("/f", OpenFlags.W | OpenFlags.CREATE)
        yield from f.write(payload)
        yield from f.close()
        g = yield from env.vfs.open("/f", OpenFlags.R)
        data = bytearray()
        while True:
            piece = yield from g.read(chunk)
            if not piece:
                break
            data.extend(piece)
        yield from g.close()
        return bytes(data)

    return system.run_app(app, name="io")


def test_write_read_roundtrip(fs_system):
    payload = bytes(range(256)) * 100  # 25.6 KB, several write chunks
    assert _roundtrip(fs_system, payload) == payload


def test_empty_file(fs_system):
    assert _roundtrip(fs_system, b"") == b""


def test_small_file_and_stat(fs_system):
    def app(env):
        f = yield from env.vfs.open("/tiny", OpenFlags.W | OpenFlags.CREATE)
        yield from f.write(b"hello")
        yield from f.close()
        return (yield from env.vfs.stat("/tiny"))

    kind, size, links, extents = fs_system.run_app(app)
    assert (kind, size, links, extents) == ("file", 5, 1, 1)


def test_open_missing_file_fails(fs_system):
    def app(env):
        try:
            yield from env.vfs.open("/missing", OpenFlags.R)
        except FsError as exc:
            return str(exc)

    assert "no such file" in fs_system.run_app(app)


def test_read_on_write_only_file_fails(fs_system):
    def app(env):
        f = yield from env.vfs.open("/w", OpenFlags.W | OpenFlags.CREATE)
        try:
            yield from f.read(10)
        except FsError as exc:
            return str(exc)

    assert "not open for reading" in fs_system.run_app(app)


def test_truncate_flag_resets_content(fs_system):
    def app(env):
        f = yield from env.vfs.open("/t", OpenFlags.W | OpenFlags.CREATE)
        yield from f.write(b"original content")
        yield from f.close()
        g = yield from env.vfs.open("/t", OpenFlags.W | OpenFlags.TRUNC)
        yield from g.write(b"new")
        yield from g.close()
        h = yield from env.vfs.open("/t", OpenFlags.R)
        data = yield from h.read(100)
        yield from h.close()
        return data

    assert fs_system.run_app(app) == b"new"


def test_seek_and_partial_reads(fs_system):
    payload = bytes(range(100)) * 50  # 5000 bytes

    def app(env):
        f = yield from env.vfs.open("/s", OpenFlags.W | OpenFlags.CREATE)
        yield from f.write(payload)
        yield from f.close()
        g = yield from env.vfs.open("/s", OpenFlags.R)
        yield from g.seek(1234)
        a = yield from g.read(10)
        yield from g.seek(-10, 2)
        b = yield from g.read(100)
        yield from g.seek(2, 1)  # relative from current EOF position
        c = yield from g.read(10)
        yield from g.close()
        return a, b, c

    a, b, c = fs_system.run_app(app)
    assert a == payload[1234:1244]
    assert b == payload[-10:]
    assert c == b""


def test_write_at_seek_position_overwrites(fs_system):
    def app(env):
        f = yield from env.vfs.open("/o", OpenFlags.RW | OpenFlags.CREATE)
        yield from f.write(b"A" * 100)
        yield from f.seek(10)
        yield from f.write(b"BBBB")
        yield from f.seek(0)
        data = yield from f.read(100)
        yield from f.close()
        return data

    data = fs_system.run_app(app)
    assert data == b"A" * 10 + b"BBBB" + b"A" * 86


def test_multi_extent_file_spans_appends(fs_system):
    """A file larger than one append chunk needs several extents."""
    blocks = fs_system.fs_server.fs.append_blocks
    block_size = fs_system.fs_server.fs.sb.block_size
    payload = b"Z" * (3 * blocks * block_size + 17)

    assert _roundtrip(fs_system, payload) == payload

    inode = fs_system.fs_server.fs.resolve("/f")
    assert inode.extent_count >= 3
    assert inode.size == len(payload)


def test_close_truncates_overallocation(fs_system):
    def app(env):
        f = yield from env.vfs.open("/small", OpenFlags.W | OpenFlags.CREATE)
        yield from f.write(b"x" * 100)
        yield from f.close()
        return ()

    fs_system.run_app(app)
    fs = fs_system.fs_server.fs
    inode = fs.resolve("/small")
    assert inode.size == 100
    assert sum(e.block_count for e in inode.extents) == 1  # one block kept


def test_directories_via_vfs(fs_system):
    def app(env):
        yield from env.vfs.mkdir("/docs")
        f = yield from env.vfs.open("/docs/readme", OpenFlags.W | OpenFlags.CREATE)
        yield from f.write(b"docs!")
        yield from f.close()
        names = yield from env.vfs.readdir("/docs")
        yield from env.vfs.unlink("/docs/readme")
        after = yield from env.vfs.readdir("/docs")
        return names, after

    names, after = fs_system.run_app(app)
    assert names == ["readme"]
    assert after == []


def test_two_apps_share_the_filesystem(fs_system):
    def producer(env):
        f = yield from env.vfs.open("/shared", OpenFlags.W | OpenFlags.CREATE)
        yield from f.write(b"from producer")
        yield from f.close()
        return ()

    def consumer(env):
        f = yield from env.vfs.open("/shared", OpenFlags.R)
        data = yield from f.read(100)
        yield from f.close()
        return data

    fs_system.run_app(producer, name="producer")
    assert fs_system.run_app(consumer, name="consumer") == b"from producer"


def test_file_data_lives_in_simulated_dram(fs_system):
    """White-box: the bytes written must be present in the DRAM model at
    the extent's delegated location."""
    def app(env):
        f = yield from env.vfs.open("/d", OpenFlags.W | OpenFlags.CREATE)
        yield from f.write(b"dram-resident")
        yield from f.close()
        return ()

    fs_system.run_app(app)
    fs = fs_system.fs_server.fs
    inode = fs.resolve("/d")
    region_offset, _ = fs.extent_region(inode.extents[0])
    # The service's DRAM region capability is kernel state:
    service_vpe = fs_system.fs_server.vpe
    region_cap = service_vpe.captable.get(fs_system.fs_server.region.selector)
    base = region_cap.obj.address
    dram = fs_system.platform.dram.memory
    assert dram.read(base + region_offset, 13) == b"dram-resident"


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    operations=st.lists(
        st.tuples(
            st.sampled_from(["write", "seek"]),
            st.integers(min_value=0, max_value=6000),
            st.binary(min_size=1, max_size=3000),
        ),
        min_size=1,
        max_size=6,
    )
)
def test_file_content_matches_reference_model(operations):
    """Arbitrary write/seek sequences read back exactly like a local
    bytearray model (the paper's files are plain byte arrays too)."""
    system = M3System(pe_count=4).boot()

    def app(env):
        f = yield from env.vfs.open("/ref", OpenFlags.RW | OpenFlags.CREATE)
        reference = bytearray()
        position = 0
        for op, offset, payload in operations:
            if op == "seek":
                offset = min(offset, len(reference))
                yield from f.seek(offset)
                position = offset
            else:
                yield from f.write(payload)
                if len(reference) < position:
                    reference.extend(bytes(position - len(reference)))
                reference[position : position + len(payload)] = payload
                position += len(payload)
        yield from f.seek(0)
        data = bytearray()
        while True:
            piece = yield from f.read(4096)
            if not piece:
                break
            data.extend(piece)
        yield from f.close()
        return bytes(data), bytes(reference)

    data, reference = system.run_app(app)
    assert data == reference
