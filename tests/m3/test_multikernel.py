"""Multi-kernel scale-out: partitioned PE mesh, per-domain kernels and
service registries, and the inter-kernel protocol that spans them."""

import pytest

from repro.dtu.registers import MemoryPerm
from repro.m3.kernel.vpe import VpeState
from repro.m3.lib.file import OpenFlags
from repro.m3.lib.gate import MemGate
from repro.m3.lib.m3fs_client import M3fsClient
from repro.m3.lib.vpe import VPE
from repro.m3.services.m3fs.superblock import SuperBlock
from repro.m3.system import M3System


def boot_partitioned(pe_count=12, kernel_count=2, **kwargs):
    return M3System(pe_count=pe_count, kernel_count=kernel_count,
                    **kwargs).boot(with_fs=False)


def start_domain_fs(system, kernel_count, total_blocks=4096):
    """One m3fs instance per domain, named m3fs / m3fs1 / m3fs2 ..."""
    for domain in range(kernel_count):
        name = "m3fs" if domain == 0 else f"m3fs{domain}"
        system.start_m3fs(
            name=name, domain=domain,
            superblock=SuperBlock(total_blocks=total_blocks // kernel_count),
        )


# -- partitioning -----------------------------------------------------------


def test_domains_partition_the_mesh():
    system = boot_partitioned(pe_count=12, kernel_count=4)
    domains = [kernel.domain for kernel in system.kernels]
    claimed = sorted(node for domain in domains for node in domain)
    assert claimed == [pe.node for pe in system.platform.pes]
    for index, domain in enumerate(domains):
        for other in domains[index + 1 :]:
            assert not (domain & other)
    # each kernel sits on a PE inside its own domain
    for kernel in system.kernels:
        assert kernel.node in kernel.domain


def test_each_kernel_allocates_only_in_its_domain():
    system = boot_partitioned(pe_count=12, kernel_count=2)

    def idle(env):
        yield env.sim.delay(10)
        return ()

    for domain, kernel in enumerate(system.kernels):
        vpe = system.spawn(idle, name=f"d{domain}", domain=domain)
        assert vpe.node in kernel.domain
        assert vpe.kernel is kernel
        system.wait(vpe)


def test_too_small_mesh_is_rejected():
    with pytest.raises(ValueError, match="cannot host"):
        M3System(pe_count=5, kernel_count=4)


def test_service_registries_are_per_domain():
    system = boot_partitioned(pe_count=12, kernel_count=2)
    start_domain_fs(system, 2)
    assert "m3fs" in system.kernels[0].services
    assert "m3fs" not in system.kernels[1].services
    assert "m3fs1" in system.kernels[1].services
    assert "m3fs1" not in system.kernels[0].services


# -- the inter-kernel protocol ----------------------------------------------


def test_remote_session_reads_a_file_across_domains():
    """An app in domain 1 opens a session with the m3fs instance in
    domain 0: remote service lookup, cross-domain session setup, and
    memory delegation back to the client's domain."""
    system = boot_partitioned(pe_count=12, kernel_count=2)
    start_domain_fs(system, 2)
    system.fs_preload({"/hello.txt": b"hello across domains"},
                      server=system.fs_servers["m3fs"])

    def app(env):
        client = yield from M3fsClient.connect(env, service="m3fs")
        env.vfs.mount("/", client)
        f = yield from env.vfs.open("/hello.txt", OpenFlags.R)
        data = yield from f.read(64)
        return bytes(data)

    vpe = system.spawn(app, name="reader", domain=1)
    assert system.wait(vpe) == b"hello across domains"
    k0, k1 = system.kernels
    assert k1.ik_requests_sent >= 1  # srv_open to domain 0
    assert k0.ik_requests_served >= 1
    assert k0.ik_requests_sent >= 1  # delegate_mem back to domain 1
    assert k1.ik_requests_served >= 1


def test_unknown_service_fails_across_all_domains():
    system = boot_partitioned(pe_count=12, kernel_count=2)

    def app(env):
        try:
            yield from M3fsClient.connect(env, service="no-such-service")
        except Exception as exc:
            return str(exc)
        return "connected?!"

    assert "no-such-service" in system.run_app(app)


def test_vpe_spills_into_a_peer_domain():
    """Domain 0 has no free PE left, so CREATE_VPE spills the child to
    domain 1; start and wait work through the remote-VPE proxy."""
    # domains: {0, 1} and {2, 3}; kernels on 0 and 2, parent takes 1.
    system = boot_partitioned(pe_count=4, kernel_count=2)

    def child(env, x):
        yield env.sim.delay(100)
        return x * 2

    def parent(env):
        vpe = yield from VPE.create(env, name="spilled")
        yield from vpe.run(child, 21)
        return (yield from vpe.wait())

    vpe = system.spawn(parent, name="parent", domain=0)
    assert system.wait(vpe) == 42
    assert len(system.kernels[1].vpes) == 1  # the spilled child
    assert system.kernels[0].ik_requests_sent >= 3  # create/start/wait


def test_memory_delegation_to_a_spilled_child():
    system = boot_partitioned(pe_count=4, kernel_count=2)

    def child(env, mem_sel):
        gate = MemGate(env, mem_sel, 4096)
        data = yield from gate.read(0, 11)
        yield from gate.write(100, b"child reply")
        return bytes(data)

    def parent(env):
        gate = yield from MemGate.create(env, 4096, MemoryPerm.RW.value)
        yield from gate.write(0, b"from parent")
        vpe = yield from VPE.create(env, name="spilled")
        child_sel = yield from vpe.delegate_gate(gate)
        yield from vpe.run(child, child_sel)
        result = yield from vpe.wait()
        reply = yield from gate.read(100, 11)
        return result, bytes(reply)

    vpe = system.spawn(parent, name="parent", domain=0)
    assert system.wait(vpe) == (b"from parent", b"child reply")


def test_cross_domain_wait_parks_until_exit():
    """The waiting side parks an inter-kernel slot; the exit
    notification arrives only when the child really exits."""
    system = boot_partitioned(pe_count=4, kernel_count=2)

    def child(env):
        yield env.sim.delay(50_000)
        return "late"

    def parent(env):
        vpe = yield from VPE.create(env, name="slow")
        yield from vpe.run(child)
        started = env.sim.now
        code = yield from vpe.wait()
        return code, env.sim.now - started

    vpe = system.spawn(parent, name="parent", domain=0)
    code, waited = system.wait(vpe)
    assert code == "late"
    assert waited >= 50_000


# -- determinism ------------------------------------------------------------


def _boot_and_run_fixed_workload():
    system = boot_partitioned(pe_count=12, kernel_count=2)
    start_domain_fs(system, 2)
    system.fs_preload({"/data.bin": bytes(range(256))},
                      server=system.fs_servers["m3fs"])

    def app(env, service):
        client = yield from M3fsClient.connect(env, service=service)
        env.vfs.mount("/", client)
        kind, size, _links, _extents = yield from env.vfs.stat("/")
        return kind, size, env.sim.now

    vpes = [
        system.spawn(app, "m3fs", name="a0", domain=0),
        system.spawn(app, "m3fs", name="a1", domain=1),  # cross-domain
        system.spawn(app, "m3fs1", name="b1", domain=1),
    ]
    results = [system.wait(vpe) for vpe in vpes]
    return results, system.sim.now


def test_multikernel_runs_are_deterministic():
    first = _boot_and_run_fixed_workload()
    second = _boot_and_run_fixed_workload()
    assert first == second


def test_single_kernel_layout_is_unchanged():
    """kernel_count=1 must leave the classic layout untouched: one
    kernel owning every PE, no peers, no inter-kernel endpoints."""
    system = M3System(pe_count=6).boot(with_fs=False)
    assert system.kernels == [system.kernel]
    assert system.kernel.peers == {}
    assert system.kernel.domain is None
    assert system.kernel.label == "kernel"
    # service endpoints still start right after the reply endpoint
    from repro.m3.kernel.kernel import KERNEL_FIRST_SRV_EP

    assert system.kernel._next_service_ep == KERNEL_FIRST_SRV_EP


# -- the system.wait bugfix --------------------------------------------------


def test_wait_on_already_dead_vpe_raises_late_crashes():
    """Regression: a VPE that exits and *then* crashes left the crash
    swallowed when wait() was called after the fact."""
    system = M3System(pe_count=4).boot(with_fs=False)

    def app(env):
        yield from env.exit(0)
        raise RuntimeError("crashed after exit")

    vpe = system.spawn(app, name="zombie")
    system.sim.run()
    assert vpe.state == VpeState.DEAD
    with pytest.raises(RuntimeError, match="crashed after exit"):
        system.wait(vpe)
