"""Full-system sharding: determinism, boundary accounting, validation.

``M3System(shards=n)`` must be byte-identical to the monolithic engine
for every workload — that is the determinism contract the evals gate
on — and the kernel-level stale-handle paths (ik retry timers firing,
DTU wipes under reliable delivery) must leave ``pending_events``
exactly balanced now that execution consumes handles.
"""

import pytest

from repro.faults import FaultPlan
from repro.m3.lib.vpe import VPE
from repro.m3.system import M3System
from repro.workloads import traffic


def _mini_profile(**overrides) -> traffic.TrafficProfile:
    return traffic.TrafficProfile(
        name="mini", seed=77, clients=24, requests=36, mean_gap=2_500,
        drain_cycles=200_000, **overrides,
    )


def _fingerprint(result: traffic.TrafficResult) -> tuple:
    """Everything the eval report is a function of, hashable."""
    return (
        result.sent, result.completed, result.makespan,
        tuple(sorted(result.latencies.items())),
        result.tx_retries, result.gw_tx_retries,
        tuple(result.served_by),
        tuple(sorted(result.route_counts.items())),
        tuple(sorted(result.replica_requests.items())),
        result.noc_packets_lost, result.dtu_retransmits,
    )


def test_traffic_identical_across_shard_counts():
    baseline = _fingerprint(traffic.run_profile(_mini_profile()))
    sharded = _fingerprint(traffic.run_profile(_mini_profile(), shards=2))
    assert sharded == baseline


def test_traffic_double_run_is_deterministic_at_shards_2():
    first = _fingerprint(traffic.run_profile(_mini_profile(), shards=2))
    second = _fingerprint(traffic.run_profile(_mini_profile(), shards=2))
    assert first == second


def test_four_domain_variant_identical_at_1_2_4_shards():
    fingerprints = {
        shards: _fingerprint(traffic.run_profile(
            _mini_profile(), shards=shards,
            pe_count=24, kernel_count=4, gateways=3, ep_count=12,
        ))
        for shards in (1, 2, 4)
    }
    assert fingerprints[1] == fingerprints[2] == fingerprints[4]


def test_fig6_multikernel_point_identical_across_shards():
    from repro.eval.fig6_multikernel import average_instance_time

    averages = {
        shards: average_instance_time("find", 4, shards=shards)
        for shards in (1, 2, 4)
    }
    assert averages[1] == averages[2] == averages[4]


def test_cross_shard_traffic_is_counted():
    """A client in domain 1 opening domain 0's service crosses the
    shard boundary; the facade's egress accounting must see it."""
    system = M3System(pe_count=8, kernel_count=2, shards=2).boot()
    assert system.platform.network.shards is system.sim
    assert system.sim.cross_packets == 0  # boot stays inside domains

    def app(env):
        from repro.m3.lib.m3fs_client import M3fsClient

        client = yield from M3fsClient.connect(env, service="m3fs")
        env.vfs.mount("/", client)
        yield from env.vfs.stat("/")
        return 0

    vpe = system.spawn(app, name="remote-client", domain=1)
    assert system.wait(vpe) == 0
    assert system.sim.cross_packets > 0
    assert system.sim.cross_bytes > 0


def test_sharded_quantum_comes_from_noc_hop_latency():
    system = M3System(pe_count=8, kernel_count=2, shards=2)
    plan = system.platform.shard_plan
    assert plan.quantum == system.platform.config.noc_hop_cycles
    boundary = plan.boundary_links(system.platform.topology)
    assert boundary


def test_shards_require_matching_kernel_domains():
    with pytest.raises(ValueError, match="cannot split"):
        M3System(pe_count=8, kernel_count=1, shards=2)


def test_shards_reject_prebuilt_platform():
    from repro.hw import Platform

    with pytest.raises(ValueError, match="build the platform"):
        M3System(platform=Platform.build(8), kernel_count=2, shards=2)


def test_shards_reject_nonpositive():
    with pytest.raises(ValueError, match="at least one shard"):
        M3System(pe_count=8, shards=0)


def test_shards_one_uses_the_monolithic_engine():
    from repro.sim import Simulator

    system = M3System(pe_count=8, shards=1)
    assert type(system.sim) is Simulator
    assert system.platform.network.shards is None


# -- kernel/DTU stale-handle accounting (the bugfix sweep's live site) --------


def test_ik_retry_timers_leave_pending_events_exact():
    """Every ik retry fires ``_ik_timer_fired`` *from its own timer*,
    which then cancels that just-executed handle — the exact stale
    cancel the engine fix makes a no-op.  Pre-fix, ``pending_events``
    went one negative per retry; it must drain to exactly zero."""
    system = M3System(pe_count=4, kernel_count=2, reliable=True)
    k0, _k1 = system.kernels
    FaultPlan(seed=3).delay(
        1.0, cycles=(3_000, 3_000), kinds=("reply",), destination=k0.node
    ).install(system.platform)
    system.boot(with_fs=False)

    def child(env, x):
        yield env.sim.delay(100)
        return x * 2

    def parent(env):
        vpe = yield from VPE.create(env, name="spilled")
        yield from vpe.run(child, 21)
        return (yield from vpe.wait())

    vpe = system.spawn(parent, name="parent", domain=0)
    assert system.wait(vpe) == 42
    assert k0.ik_retries >= 1  # the stale-cancel path actually ran
    system.sim.run()  # drain remaining retry timers
    assert system.sim.pending_events == 0


def test_dtu_wipe_leaves_pending_events_exact():
    """A kernel-driven DTU wipe clears ``_retx`` under live retransmit
    timers; the orphaned timers fire as no-ops and the books balance
    to zero."""
    from repro import params

    system = M3System(pe_count=4, reliable=True)
    system.boot(with_fs=False)

    def app(env):
        yield env.sim.delay(10)
        try:
            yield from env.syscall("noop")
        except Exception:
            pass
        return 0

    vpe = system.spawn(app, name="doomed")
    # Boot is clean; now drop every message leaving node 1 so the
    # syscall's transfer arms a retransmit timer that never gets acked.
    FaultPlan(seed=5).drop(
        1.0, source=1, kinds=("message",)
    ).install(system.platform)
    dtu = system.platform.pe(1).dtu
    # Let the transfer get in flight, then wipe the DTU while its
    # retransmit timer is pending.
    system.sim.run(until=system.sim.now + 2 * params.DTU_RETX_TIMEOUT_CYCLES)
    assert dtu._retx  # a retransmit timer is live
    dtu._apply_config("wipe", ())
    assert not dtu._retx
    system.sim.run()
    assert system.sim.pending_events == 0
