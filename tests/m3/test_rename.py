"""rename across the stack: fs core, service protocol, VFS, baseline."""

import pytest

from repro.linuxsim.fs import LxFsError, TmpFs
from repro.linuxsim.machine import LinuxMachine, O_CREAT, O_WRONLY
from repro.m3.lib.file import OpenFlags
from repro.m3.services.m3fs.fs import FsError, M3FS
from repro.m3.services.m3fs.superblock import SuperBlock


def _fs():
    return M3FS(SuperBlock(total_blocks=256))


def test_m3fs_core_rename_moves_entry():
    fs = _fs()
    fs.mkdir("/a")
    fs.mkdir("/b")
    inode = fs.create("/a/f")
    fs.rename("/a/f", "/b/g")
    assert not fs.exists("/a/f")
    assert fs.resolve("/b/g") is inode


def test_m3fs_core_rename_replaces_target_and_frees_blocks():
    fs = _fs()
    fs.create("/keep")
    victim = fs.create("/victim")
    fs.append_extent(victim, 4)
    used = fs.block_bitmap.used
    fs.rename("/keep", "/victim")
    assert fs.block_bitmap.used == used - 4
    assert fs.exists("/victim") and not fs.exists("/keep")


def test_m3fs_core_rename_errors():
    fs = _fs()
    fs.mkdir("/d")
    fs.create("/f")
    with pytest.raises(FsError):
        fs.rename("/missing", "/x")
    with pytest.raises(FsError):
        fs.rename("/f", "/d")  # target is a directory
    fs.rename("/f", "/f")  # self-rename is a no-op
    assert fs.exists("/f")


def test_rename_through_vfs(fs_system):
    def app(env):
        f = yield from env.vfs.open("/old", OpenFlags.W | OpenFlags.CREATE)
        yield from f.write(b"renamed content")
        yield from f.close()
        yield from env.vfs.rename("/old", "/new")
        g = yield from env.vfs.open("/new", OpenFlags.R)
        data = yield from g.read(64)
        yield from g.close()
        missing = True
        try:
            yield from env.vfs.open("/old", OpenFlags.R)
            missing = False
        except FsError:
            pass
        return data, missing

    data, missing = fs_system.run_app(app)
    assert data == b"renamed content"
    assert missing


def test_tmpfs_rename():
    fs = TmpFs()
    node = fs.create("/x")
    fs.create("/y")
    fs.rename("/x", "/y")  # replaces y
    assert fs.lookup("/y") is node
    assert not fs.exists("/x")
    with pytest.raises(LxFsError):
        fs.rename("/nope", "/z")


def test_linux_rename_syscall():
    machine = LinuxMachine()

    def program(lx):
        fd = yield from lx.open("/a", O_WRONLY | O_CREAT)
        yield from lx.write(fd, b"move me")
        yield from lx.close(fd)
        yield from lx.rename("/a", "/b")
        return (yield from lx.stat("/b"))

    assert machine.run_program(program)[1] == 7
    assert not machine.fs.exists("/a")
