"""Elastic scaling: queue-depth routing, the depth gossip rider, the
all-replicas-dead route regression, and the autoscaler's warm-boot
scale-up / drain-and-merge scale-down."""

import pytest

from repro.m3.autoscale import AutoScaler
from repro.m3.kernel.kernel import SyscallError
from repro.m3.kernel.vpe import VpeState
from repro.m3.services.kvserv import KvClient, start_kv_tier
from repro.m3.system import M3System
from repro.obs import SloMonitor, SloSpec


# -- regression: a route whose every replica domain is dead -------------------


def test_route_with_all_replica_domains_dead_fails_fast():
    """Every replica of a route lives in a failed domain: the router
    must raise a deterministic error instead of falling through — and
    it must not advance the cursor or count a session it never
    dispatched."""
    system = M3System(pe_count=4, kernel_count=2, reliable=True)
    k0, _k1 = system.kernels
    system.boot(with_fs=False)
    system.register_service_route(
        "kv", (("kv0", 1), ("kv1", 1)), policy="rr"
    )
    k0.dead_peers.add(1)
    cursor_before = dict(k0._route_cursor)
    counts_before = dict(k0.route_counts)
    with pytest.raises(SyscallError, match="no live replica for route 'kv'"):
        k0._resolve_route("kv")
    assert k0._route_cursor == cursor_before
    assert k0.route_counts == counts_before

    # End to end: a client opening a session sees the same error (not a
    # stale replica name handed to the remote-session probe).
    def client(env):
        try:
            yield from KvClient.connect(env, service="kv")
            return "connected (unexpected)"
        except SyscallError as exc:
            return str(exc)

    assert "no live replica" in system.run_app(client, name="client")


def test_no_live_replica_dumps_the_flight_recorder():
    """The no-live-replica verdict is a failure: with the recorder on,
    the router freezes the black box before raising."""
    system = M3System(pe_count=4, kernel_count=2, reliable=True,
                      observe=True)
    k0, _k1 = system.kernels
    system.boot(with_fs=False)
    flight = system.enable_flight_recorder()
    system.register_service_route(
        "kv", (("kv0", 1), ("kv1", 1)), policy="rr"
    )
    k0.dead_peers.add(1)
    with pytest.raises(SyscallError, match="no live replica"):
        k0._resolve_route("kv")
    assert len(flight.dumps) == 1
    assert flight.dumps[0]["reason"] == \
        "kernel0: no live replica for route 'kv'"
    assert flight.dumps[0]["domain"] == 0


def test_depth_route_skips_dead_domains_too():
    system = M3System(pe_count=4, kernel_count=2, reliable=True)
    k0, _k1 = system.kernels
    system.boot(with_fs=False)
    system.register_service_route(
        "kv", (("kv0", 1), ("kv1", 1)), policy="depth"
    )
    k0.dead_peers.add(1)
    with pytest.raises(SyscallError, match="no live replica"):
        k0._resolve_route("kv")


# -- queue-depth routing ------------------------------------------------------


def test_depth_policy_prefers_least_loaded_replica():
    """``policy="depth"`` picks the smallest known queue depth among
    the live replicas; equal depths still rotate in cursor order."""
    system = M3System(pe_count=4, kernel_count=2, reliable=True)
    k0, _k1 = system.kernels
    system.boot(with_fs=False)
    system.register_service_route(
        "kv", (("kva", 1), ("kvb", 1)), policy="depth"
    )
    k0.replica_depths = {"kva": (10, 4), "kvb": (10, 1)}
    assert k0._resolve_route("kv") == "kvb"
    assert k0._resolve_route("kv") == "kvb"  # still the least loaded
    k0.replica_depths = {"kva": (20, 0), "kvb": (20, 3)}
    assert k0._resolve_route("kv") == "kva"
    # Equal depths: the cursor tiebreak rotates like round-robin.
    k0.replica_depths = {"kva": (30, 2), "kvb": (30, 2)}
    first = k0._resolve_route("kv")
    second = k0._resolve_route("kv")
    assert {first, second} == {"kva", "kvb"}
    assert k0.route_counts["kvb"] >= 1 and k0.route_counts["kva"] >= 1


def test_unknown_replica_depth_counts_as_idle():
    system = M3System(pe_count=4, kernel_count=2, reliable=True)
    k0, _k1 = system.kernels
    system.boot(with_fs=False)
    system.register_service_route(
        "kv", (("kva", 1), ("kvb", 1)), policy="depth"
    )
    # Only kva was ever heard about; kvb defaults to depth 0 and wins.
    k0.replica_depths = {"kva": (10, 7)}
    assert k0._resolve_route("kv") == "kvb"


# -- the depth gossip rider ---------------------------------------------------


def test_rr_routes_keep_the_gossip_rider_silent():
    """Without a depth route the piggyback stays ``None`` — the
    inter-kernel wire payload is byte-identical to the pre-elastic
    format, which is what keeps the committed rr results stable."""
    system = M3System(pe_count=4, kernel_count=2, reliable=True)
    k0, _k1 = system.kernels
    system.boot(with_fs=False)
    assert k0._ik_rider() is None
    system.register_service_route("kv", (("kv0", 1),), policy="rr")
    assert k0._ik_rider() is None


def test_gossip_rider_merges_newest_stamp_wins():
    system = M3System(pe_count=4, kernel_count=2, reliable=True)
    k0, k1 = system.kernels
    system.boot(with_fs=False)
    system.register_service_route("kv", (("kv0", 0),), policy="depth")
    k0.replica_depths = {"kv0": (100, 3), "kv1": (50, 9)}
    rider = k0._ik_rider()
    assert rider == (("kv0", 100, 3), ("kv1", 50, 9))
    k1.replica_depths = {"kv1": (80, 2)}
    k1._absorb_rider(rider)
    # kv0 was news; kv1's relayed stamp 50 must not roll back the
    # fresher direct sample at stamp 80.
    assert k1.replica_depths == {"kv0": (100, 3), "kv1": (80, 2)}
    # Re-absorbing the same (now stale) rider changes nothing.
    k1._absorb_rider(rider)
    assert k1.replica_depths == {"kv0": (100, 3), "kv1": (80, 2)}


# -- the autoscaler -----------------------------------------------------------


def _stock(env, keys):
    client = yield from KvClient.connect(env, service="kv")
    for index in range(keys):
        yield from client.put(f"key{index}", bytes([index]) * 16)
    yield from client.close()
    return "stocked"


def test_scale_up_warm_boots_clone_via_cross_domain_migration():
    """Scale-up clones the donor (store image and all), stages the
    clone next to it, live-migrates it into the empty domain, and only
    then lets it register its service — under the target kernel."""
    system = M3System(pe_count=8, kernel_count=2, reliable=True)
    k0, k1 = system.kernels
    system.boot(with_fs=False)
    servers = start_kv_tier(system, domains=[0], policy="depth")
    assert system.run_app(_stock, 4, name="stock") == "stocked"

    scaler = AutoScaler(system, servers, name="kv", epoch=2_000,
                        up_depth=1, min_replicas=1)
    grown = system.sim.run_process(
        scaler._scale_up(scaler._depths()), "scale-up"
    )

    assert grown
    assert scaler.scale_ups == 1
    cycle, action, replica, domain, detail = scaler.events[-1]
    assert (action, replica, domain) == ("scale_up", "kv1", 1)
    assert detail == "warm from kv0"  # staged + migrated, not direct
    assert k1.migrations_in == 1 and k0.migrations_out == 1
    clone = scaler.servers["kv1"]
    assert clone.store == servers[0].store  # warm: the donor's image
    assert clone.vpe.node in k1.domain
    assert "kv1" in k1.services  # registered with the *target* kernel
    # Every kernel routes over the grown tier now.
    for kernel in system.kernels:
        assert kernel.service_routes["kv"] == (("kv0", 0), ("kv1", 1))


def test_scale_down_drains_and_merges_store_into_survivor():
    system = M3System(pe_count=8, kernel_count=2, reliable=True)
    _k0, k1 = system.kernels
    system.boot(with_fs=False)
    servers = start_kv_tier(system, domains=[0, 1], policy="depth")
    kv0, kv1 = servers
    kv1.store["only-here"] = b"x" * 64
    kv1.bytes_stored = 64

    scaler = AutoScaler(system, servers, name="kv", epoch=1_000,
                        min_replicas=1, drain_patience=2)
    system.sim.run_process(scaler._scale_down(), "scale-down")

    assert scaler.scale_downs == 1
    assert kv0.store["only-here"] == b"x" * 64
    assert "kv1" in scaler.retired and "kv1" not in scaler.servers
    assert kv1.vpe.state == VpeState.DEAD
    assert k1.services.get("kv1") is None
    for kernel in system.kernels:
        assert kernel.service_routes["kv"] == (("kv0", 0),)
    assert scaler.events[-1][1] == "scale_down"
    assert "64B merged into kv0" in scaler.events[-1][4]


def test_slo_policy_validates_its_arguments():
    system = M3System(pe_count=4, reliable=True)
    system.boot(with_fs=False)
    servers = start_kv_tier(system, domains=[0], policy="depth")
    with pytest.raises(ValueError, match="unknown autoscale policy"):
        AutoScaler(system, servers, policy="burn")
    with pytest.raises(ValueError, match="needs an slo_monitor"):
        AutoScaler(system, servers, policy="slo")
    # The default stays depth-based: no monitor required.
    assert AutoScaler(system, servers).policy == "depth"


def test_slo_policy_scales_up_on_page_alert():
    """``policy="slo"`` grows on a fired page alert, not on raw queue
    depth: the tier is idle (depth 0 everywhere) yet still scales up
    because the objective is burning."""
    system = M3System(pe_count=8, kernel_count=2, reliable=True,
                      observe=True)
    system.boot(with_fs=False)
    telemetry = system.enable_telemetry(epoch=1_000)
    monitor = SloMonitor(
        system.sim.obs,
        SloSpec("kv-avail", target=0.9,
                bad_series="kv.err", total_series="kv.req"),
        windows=(("page", 1, 2, 2.0),),
    )
    servers = start_kv_tier(system, domains=[0], policy="depth")
    scaler = AutoScaler(system, servers, name="kv", epoch=2_000,
                        policy="slo", slo_monitor=monitor,
                        min_replicas=1)
    scaler.start()

    def driver(env):
        # Burn the error budget hard: 5 bad of 10 against a 10% budget
        # is a 5x burn, over the page factor on both windows.
        telemetry.counter("kv.req", 10)
        telemetry.counter("kv.err", 5)
        yield env.compute(1_500)
        telemetry.advance()  # close the epoch -> the page fires
        # Long enough for the poll + checkpoint + cross-domain warm
        # boot (~28k cycles), short enough that the idle tier has not
        # yet drained back down.
        yield env.compute(34_000)
        return "driven"

    assert system.run_app(driver, name="driver") == "driven"
    scaler.stop()
    assert scaler.scale_ups == 1
    assert "kv1" in scaler.servers  # grew into the empty domain
    actions = [event[1] for event in scaler.events]
    assert "slo_page" in actions
    assert actions.index("slo_page") < actions.index("scale_up")
    page = next(e for e in scaler.events if e[1] == "slo_page")
    assert page[2] == "kv-avail" and page[4].startswith("burn ")


def test_slo_policy_stays_put_without_new_alerts():
    """No fresh page alert, no growth — even across several epochs; the
    cursor means one old alert cannot re-trigger every poll."""
    system = M3System(pe_count=8, kernel_count=2, reliable=True,
                      observe=True)
    system.boot(with_fs=False)
    telemetry = system.enable_telemetry(epoch=1_000)
    monitor = SloMonitor(
        system.sim.obs,
        SloSpec("kv-avail", target=0.9,
                bad_series="kv.err", total_series="kv.req"),
        windows=(("page", 1, 2, 2.0),),
    )
    servers = start_kv_tier(system, domains=[0], policy="depth")
    scaler = AutoScaler(system, servers, name="kv", epoch=2_000,
                        policy="slo", slo_monitor=monitor,
                        min_replicas=1)
    scaler.start()

    def driver(env):
        # Healthy traffic: well inside the budget every epoch.
        for _ in range(8):
            telemetry.counter("kv.req", 100)
            yield env.compute(1_000)
            telemetry.advance()
        return "driven"

    assert system.run_app(driver, name="driver") == "driven"
    scaler.stop()
    assert scaler.scale_ups == 0
    assert not [e for e in scaler.events if e[1] == "slo_page"]


def test_scale_down_aborts_while_sessions_are_open():
    """A replica that still holds client sessions after the drain
    patience window must NOT be retired — the controller puts it back
    into the route and records the abort."""
    system = M3System(pe_count=8, kernel_count=2, reliable=True)
    system.boot(with_fs=False)
    servers = start_kv_tier(system, domains=[0, 1], policy="depth")
    _kv0, kv1 = servers

    def clinger(env):
        # Session against the concrete replica, never closed.
        client = yield from KvClient.connect(env, service="kv1")
        yield from client.put("held", b"y" * 8)
        return "holding"

    assert system.run_app(clinger, name="clinger") == "holding"
    assert kv1.sessions

    scaler = AutoScaler(system, servers, name="kv", epoch=1_000,
                        min_replicas=1, drain_patience=1)
    system.sim.run_process(scaler._scale_down(), "scale-down")

    assert scaler.scale_downs == 0
    assert "kv1" in scaler.servers and not scaler.retired
    assert kv1.vpe.state == VpeState.RUNNING
    cycle, action, replica, domain, detail = scaler.events[-1]
    assert action == "scale_down_aborted" and replica == "kv1"
    assert "1 sessions undrained" in detail
    for kernel in system.kernels:
        assert kernel.service_routes["kv"] == (("kv0", 0), ("kv1", 1))
