"""Integration tests for the VPE API (create/run/exec/wait/revoke)."""

import pytest

from repro.dtu.registers import MemoryPerm
from repro.m3.kernel.kernel import SyscallError
from repro.m3.kernel.vpe import VpeState
from repro.m3.lib.file import OpenFlags
from repro.m3.lib.gate import MemGate
from repro.m3.lib.vpe import VPE


def test_run_executes_lambda_with_args(system):
    """The paper's VPE::run example: captured arguments, exit code back."""

    def child(env, a, b):
        yield env.compute(10)
        return a + b

    def parent(env):
        vpe = yield from VPE.create(env, "adder")
        yield from vpe.run(child, 4, 5)
        return (yield from vpe.wait())

    assert system.run_app(parent) == 9


def test_children_run_on_distinct_pes(system):
    def child(env):
        # Long enough that both children are alive at the same time —
        # a freed PE may legitimately be reused after an exit.
        yield env.compute(100_000)
        return env.pe.node

    def parent(env):
        nodes = [env.pe.node]
        vpes = []
        for index in range(2):
            vpe = yield from VPE.create(env, f"child{index}")
            yield from vpe.run(child)
            vpes.append(vpe)
        for vpe in vpes:
            nodes.append((yield from vpe.wait()))
        return nodes

    nodes = system.run_app(parent)
    assert len(set(nodes)) == 3  # parent + two children, all distinct


def test_children_actually_run_in_parallel(system):
    """Two children computing N cycles each finish in ~N, not ~2N."""

    def child(env):
        yield env.compute(50_000)
        return ()

    def parent(env):
        vpes = []
        for index in range(2):
            vpe = yield from VPE.create(env, f"child{index}")
            yield from vpe.run(child)
            vpes.append(vpe)
        start = env.sim.now
        for vpe in vpes:
            yield from vpe.wait()
        return env.sim.now - start

    elapsed = system.run_app(parent)
    assert elapsed < 80_000  # far less than the serial 100k


def test_wait_returns_after_exit_too(system):
    def child(env):
        yield env.compute(10)
        return 77

    def parent(env):
        vpe = yield from VPE.create(env, "c")
        yield from vpe.run(child)
        yield 50_000  # child exits long before the wait
        return (yield from vpe.wait())

    assert system.run_app(parent) == 77


def test_create_requesting_accelerator_type():
    from repro.m3.system import M3System

    system = M3System(pe_count=3, accelerators={"fft-accel": 1}).boot(
        with_fs=False
    )

    def child(env):
        yield env.compute_op("fft", 1024)
        return env.pe.core.type.name

    def parent(env):
        vpe = yield from VPE.create(env, "fft", pe_type="fft-accel")
        yield from vpe.run(child)
        return (yield from vpe.wait())

    assert system.run_app(parent) == "fft-accel"


def test_create_fails_when_no_pe_available(system):
    def hog(env):
        yield 10**9
        return ()

    def parent(env):
        vpes = []
        try:
            for index in range(10):
                vpe = yield from VPE.create(env, f"hog{index}")
                yield from vpe.run(hog)
                vpes.append(vpe)
        except SyscallError as exc:
            return (len(vpes), str(exc))

    count, error = system.run_app(parent)
    assert "no free PE" in error
    assert count >= 2


def test_revoke_resets_pe_and_frees_it(system):
    def stuck_child(env):
        yield 10**9
        return ()

    def parent(env):
        vpe = yield from VPE.create(env, "stuck")
        yield from vpe.run(stuck_child)
        yield 1000
        yield from vpe.revoke()
        # The PE must be reusable afterwards.
        fresh = yield from VPE.create(env, "fresh")
        yield from fresh.run(quick_child)
        return (yield from fresh.wait())

    def quick_child(env):
        yield env.compute(5)
        return "alive"

    assert system.run_app(parent) == "alive"


def test_exec_loads_program_from_filesystem(fs_system):
    """exec reads the binary's bytes from m3fs, then starts the
    registered program of that name."""

    def fft_program(env, scale):
        yield env.compute(10)
        return ("ran", scale)

    fs_system.register_program("fft.bin", fft_program)

    def parent(env):
        f = yield from env.vfs.open("/bin-fft", OpenFlags.W | OpenFlags.CREATE)
        yield from f.write(b"\x7fELF" + b"\x00" * 2000)  # the "binary"
        yield from f.close()
        # Install under the canonical name, then exec it.
        yield from env.vfs.link("/bin-fft", "/fft.bin")
        vpe = yield from VPE.create(env, "fft")
        yield from vpe.exec("/fft.bin", 3)
        return (yield from vpe.wait())

    assert fs_system.run_app(parent) == ("ran", 3)


def test_exec_unregistered_program_fails(fs_system):
    def parent(env):
        f = yield from env.vfs.open("/mystery", OpenFlags.W | OpenFlags.CREATE)
        yield from f.write(b"???")
        yield from f.close()
        vpe = yield from VPE.create(env, "m")
        yield from vpe.exec("/mystery")
        return ()

    with pytest.raises(RuntimeError, match="no program"):
        fs_system.run_app(parent)


def test_delegated_memory_is_usable_by_child(system):
    def child(env, mem_sel):
        gate = MemGate(env, mem_sel, 4096)
        data = yield from gate.read(0, 11)
        yield from gate.write(100, b"child reply")
        return data

    def parent(env):
        gate = yield from MemGate.create(env, 4096, MemoryPerm.RW.value)
        yield from gate.write(0, b"from parent")
        vpe = yield from VPE.create(env, "child")
        child_sel = yield from vpe.delegate_gate(gate)
        yield from vpe.run(child, child_sel)
        result = yield from vpe.wait()
        reply = yield from gate.read(100, 11)
        return result, reply

    result, reply = system.run_app(parent)
    assert result == b"from parent"
    assert reply == b"child reply"


def test_clone_cost_includes_image_transfer(system):
    """VPE.run transfers the clone image over the DTU (xfer cycles)."""

    def child(env):
        return ()
        yield  # pragma: no cover

    def parent(env):
        vpe = yield from VPE.create(env, "c")
        before = env.sim.ledger.total("xfer")
        yield from vpe.run(child)
        after = env.sim.ledger.total("xfer")
        yield from vpe.wait()
        return after - before

    from repro.m3.lib.vpe import CLONE_IMAGE_BYTES

    xfer = system.run_app(parent)
    assert xfer >= CLONE_IMAGE_BYTES / 8  # at least the serialisation time
