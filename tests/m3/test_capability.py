"""Unit and property tests for capabilities and the derivation tree."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.m3.kernel.capability import Capability, CapKind, CapTable, revoke


def _cap(kind=CapKind.MEM, obj="obj"):
    return Capability(kind, obj)


def test_insert_assigns_selectors_in_order():
    table = CapTable()
    assert table.insert(_cap()) == 0
    assert table.insert(_cap()) == 1
    assert len(table) == 2


def test_insert_at_explicit_selector():
    table = CapTable()
    assert table.insert(_cap(), selector=5) == 5
    assert table.insert(_cap()) == 6  # allocator moves past explicit slots
    with pytest.raises(ValueError):
        table.insert(_cap(), selector=5)


def test_get_checks_kind():
    table = CapTable()
    table.insert(_cap(CapKind.MEM))
    assert table.get(0, CapKind.MEM).obj == "obj"
    with pytest.raises(KeyError):
        table.get(0, CapKind.VPE)
    with pytest.raises(KeyError):
        table.get(99)


def test_double_insert_rejected():
    table_a, table_b = CapTable(), CapTable()
    cap = _cap()
    table_a.insert(cap)
    with pytest.raises(ValueError):
        table_b.insert(cap)


def test_derive_builds_tree():
    root = _cap()
    child = root.derive()
    grandchild = child.derive()
    assert child.parent is root
    assert grandchild in child.children
    assert set(root.subtree()) == {root, child, grandchild}


def test_derive_with_kind_override():
    root = _cap(CapKind.RECV)
    child = root.derive("service", kind=CapKind.SERVICE)
    assert child.kind == CapKind.SERVICE
    assert child.parent is root


def test_revoke_removes_subtree_from_all_tables():
    """"Revoke: Undo all grants of a capability recursively" (4.5.3)."""
    alice, bob, carol = CapTable(), CapTable(), CapTable()
    root = _cap()
    alice.insert(root)
    to_bob = root.derive()
    bob.insert(to_bob)
    to_carol = to_bob.derive()
    carol.insert(to_carol)
    removed = revoke(root)
    assert len(removed) == 3
    assert len(alice) == len(bob) == len(carol) == 0


def test_revoke_midtree_keeps_ancestors():
    alice, bob, carol = CapTable(), CapTable(), CapTable()
    root = _cap()
    alice.insert(root)
    to_bob = root.derive()
    bob.insert(to_bob)
    to_carol = to_bob.derive()
    carol.insert(to_carol)
    revoke(to_bob)
    assert len(alice) == 1
    assert len(bob) == 0
    assert len(carol) == 0
    assert root.children == []  # detached from the tree


def test_revoke_children_only():
    alice, bob = CapTable(), CapTable()
    root = _cap()
    alice.insert(root)
    bob.insert(root.derive())
    removed = revoke(root, include_self=False)
    assert len(removed) == 1
    assert len(alice) == 1
    assert len(bob) == 0


@given(st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=60))
def test_revoke_exactly_removes_descendants(parent_choices):
    """Build a random derivation forest; revoking any node removes
    exactly its descendants and nothing else."""
    tables = [CapTable() for _ in range(4)]
    root = _cap()
    tables[0].insert(root)
    caps = [root]
    for i, choice in enumerate(parent_choices):
        parent = caps[choice % len(caps)]
        child = parent.derive()
        tables[(i + 1) % len(tables)].insert(child)
        caps.append(child)
    victim = caps[len(caps) // 2]
    expected_gone = set(victim.subtree())
    revoke(victim)
    for cap in caps:
        if cap in expected_gone:
            assert cap.table is None
        else:
            assert cap.table is not None
            # Tree invariant: no survivor references a revoked child.
            assert not any(child in expected_gone for child in cap.children)
