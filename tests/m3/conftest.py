"""Fixtures for OS-level tests."""

import pytest

from repro.m3.system import M3System


@pytest.fixture
def system():
    """A booted system without the filesystem service (fast)."""
    return M3System(pe_count=6).boot(with_fs=False)


@pytest.fixture
def fs_system():
    """A booted system with m3fs running."""
    return M3System(pe_count=6).boot(with_fs=True)
