"""Unit and property tests for message marshalling."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.m3.lib.marshalling import Istream, Ostream, wire_size


def test_wire_sizes_are_8_byte_granular():
    assert wire_size(5) == 8
    assert wire_size(True) == 8
    assert wire_size(3.14) == 8
    assert wire_size(None) == 8
    assert wire_size("abc") == 16  # 8 length + 8 padded payload
    assert wire_size(b"123456789") == 24  # 8 + 16 padded


def test_container_sizes_nest():
    assert wire_size((1, 2)) == 8 + 16
    assert wire_size([1, "ab"]) == 8 + 8 + 16
    assert wire_size({"k": 1}) == 8 + 16 + 8


def test_callable_travels_as_address():
    assert wire_size(lambda env: None) == 8


def test_unmarshallable_rejected():
    with pytest.raises(TypeError):
        wire_size(object())


def test_ostream_shift_collects_and_sizes():
    stream = Ostream() << 1 << "hi" << b"abc"
    assert stream.payload() == (1, "hi", b"abc")
    assert stream.size == 8 + 16 + 16


def test_ostream_rejects_bad_values_eagerly():
    with pytest.raises(TypeError):
        Ostream() << object()


def test_istream_pops_in_order():
    stream = Istream((1, "two", 3.0))
    assert stream.pop() == 1
    assert stream.pop() == "two"
    assert stream.remaining == 1
    assert list(stream) == [3.0]
    with pytest.raises(ValueError):
        stream.pop()


_values = st.recursive(
    st.one_of(
        st.integers(min_value=-(2**62), max_value=2**62),
        st.text(max_size=20),
        st.binary(max_size=30),
        st.booleans(),
        st.none(),
    ),
    lambda children: st.lists(children, max_size=4).map(tuple),
    max_leaves=12,
)


@given(st.lists(_values, max_size=8))
def test_marshal_unmarshal_roundtrip(values):
    stream = Ostream()
    for value in values:
        stream << value
    out = list(Istream(stream.payload()))
    assert out == values


@given(_values)
def test_wire_size_positive_and_aligned(value):
    size = wire_size(value)
    assert size >= 8
    assert size % 8 == 0
