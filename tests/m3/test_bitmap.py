"""Unit and property tests for the m3fs allocation bitmap."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.m3.services.m3fs.bitmap import Bitmap


def test_alloc_progresses():
    bitmap = Bitmap(8)
    assert bitmap.alloc() == 0
    assert bitmap.alloc() == 1
    assert bitmap.used == 2
    assert bitmap.free == 6


def test_alloc_run_takes_first_fit():
    bitmap = Bitmap(16)
    bitmap.alloc_run(4)
    start, got = bitmap.alloc_run(4)
    assert (start, got) == (4, 4)


def test_alloc_run_accepts_shorter_run():
    bitmap = Bitmap(10)
    bitmap.alloc_run(4)  # [0,4)
    bitmap.alloc_run(2)  # [4,6)
    bitmap.free_run(0, 4)  # hole of 4 at 0; tail [6,10) also 4
    start, got = bitmap.alloc_run(8)
    # Wants 8; no run satisfies it, so the first longest run wins.
    assert (start, got) == (0, 4)


def test_alloc_run_prefers_full_fit_over_earlier_partial():
    bitmap = Bitmap(20)
    bitmap.alloc_run(2)  # [0,2)
    bitmap.alloc_run(2)  # [2,4)
    bitmap.free_run(0, 2)  # 2-hole at 0
    start, got = bitmap.alloc_run(5)
    assert (start, got) == (4, 5)  # full fit later wins


def test_minimum_respected():
    bitmap = Bitmap(4)
    bitmap.alloc_run(3)
    with pytest.raises(MemoryError):
        bitmap.alloc_run(4, minimum=2)


def test_free_and_double_free():
    bitmap = Bitmap(8)
    start, got = bitmap.alloc_run(4)
    bitmap.free_run(start, got)
    assert bitmap.free == 8
    with pytest.raises(ValueError):
        bitmap.free_run(start, got)


def test_bad_arguments():
    with pytest.raises(ValueError):
        Bitmap(0)
    bitmap = Bitmap(8)
    with pytest.raises(ValueError):
        bitmap.alloc_run(0)
    with pytest.raises(ValueError):
        bitmap.alloc_run(2, minimum=3)
    with pytest.raises(ValueError):
        bitmap.free_run(6, 4)


@given(st.data())
def test_allocated_runs_are_disjoint(data):
    bitmap = Bitmap(128)
    live = []
    for _ in range(data.draw(st.integers(min_value=1, max_value=30))):
        if live and data.draw(st.booleans()):
            start, got = live.pop()
            bitmap.free_run(start, got)
            continue
        want = data.draw(st.integers(min_value=1, max_value=40))
        try:
            start, got = bitmap.alloc_run(want)
        except MemoryError:
            continue
        assert 1 <= got <= want
        for other_start, other_got in live:
            assert start + got <= other_start or other_start + other_got <= start
        live.append((start, got))
    assert bitmap.used == sum(got for _, got in live)
