"""Stateful property testing of the m3fs core against a reference model."""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.m3.services.m3fs.extents import total_bytes
from repro.m3.services.m3fs.fs import FsError, M3FS
from repro.m3.services.m3fs.superblock import SuperBlock

_names = st.sampled_from([f"n{i}" for i in range(8)])


class M3fsMachine(RuleBasedStateMachine):
    """Random namespace/allocation operations with a dict reference.

    The reference tracks the *namespace* (path -> kind, link target
    identity); m3fs-specific state (bitmaps, extents) is checked by
    invariants instead.
    """

    def __init__(self):
        super().__init__()
        self.fs = M3FS(SuperBlock(total_blocks=256, total_inodes=64),
                       append_blocks=4)
        #: path -> ("dir" | inode-identity-token)
        self.model: dict[str, object] = {"/": "dir"}

    def _parent_ok(self, path: str) -> bool:
        parent = path.rsplit("/", 1)[0] or "/"
        return self.model.get(parent) == "dir"

    # -- rules ---------------------------------------------------------------

    @rule(parent=_names, name=_names)
    def create_file(self, parent, name):
        path = f"/{parent}/{name}" if f"/{parent}" in self.model else f"/{name}"
        try:
            inode = self.fs.create(path)
        except FsError:
            assert path in self.model or not self._parent_ok(path)
            return
        assert path not in self.model and self._parent_ok(path)
        self.model[path] = ("file", inode.ino)

    @rule(name=_names)
    def make_dir(self, name):
        path = f"/{name}"
        try:
            self.fs.mkdir(path)
        except FsError:
            assert path in self.model
            return
        assert path not in self.model
        self.model[path] = "dir"

    @rule(name=_names, blocks=st.integers(min_value=1, max_value=8))
    def append(self, name, blocks):
        path = f"/{name}"
        entry = self.model.get(path)
        if not isinstance(entry, tuple):
            return
        inode = self.fs.resolve(path)
        used_before = self.fs.block_bitmap.used
        try:
            extent = self.fs.append_extent(inode, blocks)
        except MemoryError:
            return
        assert 1 <= extent.block_count <= blocks
        assert self.fs.block_bitmap.used == used_before + extent.block_count

    @rule(name=_names, size=st.integers(min_value=0, max_value=8 * 1024))
    def truncate(self, name, size):
        path = f"/{name}"
        entry = self.model.get(path)
        if not isinstance(entry, tuple):
            return
        inode = self.fs.resolve(path)
        capacity = total_bytes(inode.extents, self.fs.sb.block_size)
        size = min(size, capacity)
        self.fs.truncate(inode, size)
        assert inode.size == size

    @rule(name=_names)
    def unlink(self, name):
        path = f"/{name}"
        entry = self.model.get(path)
        try:
            self.fs.unlink(path)
        except FsError:
            missing = entry is None
            nonempty_dir = entry == "dir" and any(
                other.startswith(path + "/") for other in self.model
            )
            assert missing or nonempty_dir
            return
        assert entry is not None
        for other in list(self.model):
            if other == path:
                del self.model[other]

    @rule(src_name=_names, dst_name=_names)
    def hard_link(self, src_name, dst_name):
        source_path, target_path = f"/{src_name}", f"/{dst_name}"
        entry = self.model.get(source_path)
        try:
            self.fs.link(source_path, target_path)
        except FsError:
            assert (
                not isinstance(entry, tuple)
                or target_path in self.model
            )
            return
        assert isinstance(entry, tuple)
        self.model[target_path] = entry  # same inode identity

    # -- invariants -----------------------------------------------------------

    @invariant()
    def namespace_matches(self):
        for path, entry in self.model.items():
            inode = self.fs.resolve(path)
            if entry == "dir":
                assert inode.is_dir
            else:
                assert not inode.is_dir
                assert inode.ino == entry[1]

    @invariant()
    def block_accounting_is_exact(self):
        claimed = sum(
            extent.block_count
            for inode in self.fs.inodes.values()
            for extent in inode.extents
        )
        assert claimed + self.fs.reserved_meta_blocks == \
            self.fs.block_bitmap.used

    @invariant()
    def extents_are_disjoint(self):
        seen = set()
        for inode in self.fs.inodes.values():
            for extent in inode.extents:
                for block in range(extent.start_block,
                                   extent.start_block + extent.block_count):
                    assert block not in seen, "block claimed twice"
                    seen.add(block)

    @invariant()
    def link_counts_match_directory_entries(self):
        references: dict[int, int] = {}
        for inode in self.fs.inodes.values():
            if inode.is_dir:
                for child in inode.entries.values():
                    references[child] = references.get(child, 0) + 1
        for inode in self.fs.inodes.values():
            if not inode.is_dir:
                assert inode.links == references.get(inode.ino, 0)


M3fsStateful = M3fsMachine.TestCase
M3fsStateful.settings = settings(max_examples=30, deadline=None,
                                 stateful_step_count=40)
