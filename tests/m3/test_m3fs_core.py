"""Unit tests for the m3fs core (no simulation involved)."""

import pytest

from repro.m3.services.m3fs.extents import Extent, locate, total_bytes
from repro.m3.services.m3fs.fs import FsError, M3FS
from repro.m3.services.m3fs.superblock import SuperBlock


def _fs(blocks=1024, block_size=1024, append=16):
    return M3FS(SuperBlock(block_size=block_size, total_blocks=blocks),
                append_blocks=append)


def test_fresh_fs_has_root_dir():
    fs = _fs()
    assert fs.readdir("/") == []
    assert fs.stat("/") == ("dir", 0, 1, 0)


def test_create_and_resolve():
    fs = _fs()
    fs.create("/a.txt")
    assert fs.exists("/a.txt")
    assert fs.stat("/a.txt")[0] == "file"
    with pytest.raises(FsError):
        fs.create("/a.txt")


def test_nested_directories():
    fs = _fs()
    fs.mkdir("/usr")
    fs.mkdir("/usr/share")
    fs.create("/usr/share/words")
    assert fs.readdir("/usr") == ["share"]
    assert fs.readdir("/usr/share") == ["words"]
    with pytest.raises(FsError):
        fs.mkdir("/nonexistent/dir")


def test_path_normalization():
    fs = _fs()
    fs.mkdir("/a")
    fs.create("/a/b")
    assert fs.exists("//a///b/")
    assert fs.exists("a/b")


def test_unlink_file_frees_blocks():
    fs = _fs()
    inode = fs.create("/victim")
    fs.append_extent(inode, 8)
    used_before = fs.block_bitmap.used
    fs.unlink("/victim")
    assert fs.block_bitmap.used == used_before - 8
    assert not fs.exists("/victim")


def test_unlink_nonempty_dir_refused():
    fs = _fs()
    fs.mkdir("/d")
    fs.create("/d/f")
    with pytest.raises(FsError):
        fs.unlink("/d")
    fs.unlink("/d/f")
    fs.unlink("/d")
    assert not fs.exists("/d")


def test_hard_links_share_inode():
    fs = _fs()
    inode = fs.create("/one")
    fs.link("/one", "/two")
    assert fs.stat("/two")[2] == 2  # link count
    fs.unlink("/one")
    assert fs.exists("/two")
    assert fs.resolve("/two") is inode
    fs.unlink("/two")
    assert inode.ino not in fs.inodes


def test_append_extent_and_locate():
    fs = _fs(append=4)
    inode = fs.create("/f")
    first = fs.append_extent(inode)
    second = fs.append_extent(inode)
    assert first.block_count == 4 and second.block_count == 4
    index, offset = fs.locate(inode, 5 * 1024)
    assert index == 1 and offset == 1024


def test_extent_region_maps_blocks_to_offsets():
    fs = _fs()
    inode = fs.create("/f")
    extent = fs.append_extent(inode, 4)
    offset, length = fs.extent_region(extent)
    assert offset == extent.start_block * fs.sb.block_size
    assert length == 4 * fs.sb.block_size


def test_truncate_frees_tail_blocks():
    """"the close operation truncates it to the actually used space"."""
    fs = _fs(append=16)
    inode = fs.create("/f")
    fs.append_extent(inode)  # 16 blocks = 16 KiB capacity
    fs.truncate(inode, 3 * 1024 + 100)  # keep 4 blocks
    assert inode.size == 3 * 1024 + 100
    assert sum(e.block_count for e in inode.extents) == 4
    assert fs.block_bitmap.used == 4


def test_truncate_to_zero_frees_everything():
    fs = _fs()
    inode = fs.create("/f")
    fs.append_extent(inode, 8)
    fs.truncate(inode, 0)
    assert inode.extents == []
    assert fs.block_bitmap.used == 0


def test_truncate_beyond_allocation_refused():
    fs = _fs()
    inode = fs.create("/f")
    fs.append_extent(inode, 1)
    with pytest.raises(FsError):
        fs.truncate(inode, 4096)


def test_fragmented_allocation_produces_short_extents():
    fs = _fs(blocks=32, append=16)
    a = fs.create("/a")
    b = fs.create("/b")
    fs.append_extent(a, 8)   # [0,8)
    fs.append_extent(b, 8)   # [8,16)
    fs.append_extent(a, 8)   # [16,24)
    fs.truncate(b, 0)        # hole [8,16)
    extent = fs.append_extent(a, 16)  # wants 16, best hole is 8
    assert extent.block_count == 8


def test_extent_helpers():
    extents = [Extent(0, 4), Extent(10, 2)]
    assert total_bytes(extents, 1024) == 6 * 1024
    assert locate(extents, 4096, 1024) == (1, 0)
    with pytest.raises(IndexError):
        locate(extents, 6 * 1024, 1024)
    with pytest.raises(ValueError):
        Extent(-1, 4)
    with pytest.raises(ValueError):
        Extent(0, 0)


def test_resolve_through_file_fails():
    fs = _fs()
    fs.create("/f")
    with pytest.raises(FsError):
        fs.resolve("/f/child")
    with pytest.raises(FsError):
        fs.readdir("/f")
