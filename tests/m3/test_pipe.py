"""Integration tests for pipes (DRAM ringbuffer + message synchronisation)."""

import pytest

from repro.m3.lib.pipe import Pipe, PipeReader, PipeWriter
from repro.m3.lib.vpe import VPE


def _pipe_roundtrip(system, payload, read_chunk=4096, ring_bytes=64 * 1024,
                    slots=16):
    """Parent reads, child writes; returns what the parent read."""

    def child_writer(env, mem_sel, sgate_sel, ring, slot_count):
        writer = yield from PipeWriter.attach(env, mem_sel, sgate_sel, ring,
                                              slot_count)
        yield from writer.write(payload)
        yield from writer.close()
        return ()

    def parent(env):
        pipe = yield from Pipe.create(env, ring_bytes=ring_bytes, slots=slots)
        child = yield from VPE.create(env, "writer")
        args = yield from pipe.delegate_writer(child)
        yield from child.run(child_writer, *args)
        reader = yield from pipe.reader().open()
        data = bytearray()
        while True:
            chunk = yield from reader.read(read_chunk)
            if not chunk:
                break
            data.extend(chunk)
        yield from child.wait()
        return bytes(data)

    return system.run_app(parent, name="parent")


def test_pipe_roundtrip_small(system):
    assert _pipe_roundtrip(system, b"hello through the pipe") == \
        b"hello through the pipe"


def test_pipe_roundtrip_large(system):
    payload = bytes(range(256)) * 1024  # 256 KiB, many ring wraps
    assert _pipe_roundtrip(system, payload) == payload


def test_pipe_larger_than_ring_forces_flow_control(system):
    """Data far larger than the ring: the writer must block on credits."""
    payload = b"F" * (8 * 1024)
    assert _pipe_roundtrip(system, payload, ring_bytes=2048, slots=4) == payload


def test_pipe_small_reads_use_leftover_buffer(system):
    payload = b"0123456789" * 100
    assert _pipe_roundtrip(system, payload, read_chunk=7) == payload


def test_pipe_eof_is_sticky(system):
    def child_writer(env, mem_sel, sgate_sel, ring, slot_count):
        writer = yield from PipeWriter.attach(env, mem_sel, sgate_sel, ring,
                                              slot_count)
        yield from writer.write(b"x")
        yield from writer.close()
        return ()

    def parent(env):
        pipe = yield from Pipe.create(env)
        child = yield from VPE.create(env, "writer")
        args = yield from pipe.delegate_writer(child)
        yield from child.run(child_writer, *args)
        reader = yield from pipe.reader().open()
        first = yield from reader.read(10)
        eof1 = yield from reader.read(10)
        eof2 = yield from reader.read(10)
        yield from child.wait()
        return first, eof1, eof2

    assert system.run_app(parent) == (b"x", b"", b"")


def test_pipe_parent_writes_child_reads(system):
    """The reverse direction: the creator holds the writer end."""
    payload = b"downstream data " * 500

    def child_reader(env, mem_sel, rgate_sel, ring, slot_count):
        reader = yield from PipeReader.attach(env, mem_sel, rgate_sel, ring,
                                              slot_count)
        data = bytearray()
        while True:
            chunk = yield from reader.read(4096)
            if not chunk:
                break
            data.extend(chunk)
        return bytes(data)

    def parent(env):
        pipe = yield from Pipe.create(env)
        child = yield from VPE.create(env, "reader")
        args = yield from pipe.delegate_reader(child)
        yield from child.run(child_reader, *args)
        writer = yield from pipe.writer().open()
        yield from writer.write(payload)
        yield from writer.close()
        return (yield from child.wait())

    assert system.run_app(parent) == payload


def test_pipe_kernel_not_involved_after_setup(system):
    """"after setting up the pipe, the kernel is not involved" — count
    syscalls during the transfer phase."""
    payload = b"y" * (64 * 1024)
    counts = {}

    def child_writer(env, mem_sel, sgate_sel, ring, slot_count):
        writer = yield from PipeWriter.attach(env, mem_sel, sgate_sel, ring,
                                              slot_count)
        counts["start"] = system.kernel.syscall_count
        yield from writer.write(payload)
        counts["after_write"] = system.kernel.syscall_count
        yield from writer.close()
        return ()

    def parent(env):
        pipe = yield from Pipe.create(env)
        child = yield from VPE.create(env, "writer")
        args = yield from pipe.delegate_writer(child)
        yield from child.run(child_writer, *args)
        reader = yield from pipe.reader().open()
        while True:
            chunk = yield from reader.read(4096)
            if not chunk:
                break
        yield from child.wait()
        return ()

    system.run_app(parent)
    # At most the lazy endpoint activations (bounded by EP count), not
    # one syscall per chunk (16 chunks here).
    assert counts["after_write"] - counts["start"] <= 3


def test_pipe_invalid_geometry_rejected(system):
    def parent(env):
        try:
            yield from Pipe.create(env, ring_bytes=1000, slots=16)
        except ValueError as exc:
            return str(exc)

    assert "divide" in system.run_app(parent)
