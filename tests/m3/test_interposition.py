"""Capability interposition: "send and receive capabilities are
virtualizable, i.e., they can be interposed by a proxy to e.g., monitor
the communication" (Section 4.5.3)."""

from repro.m3.kernel import syscalls
from repro.m3.lib.gate import BoundRecvGate, RecvGate, SendGate
from repro.m3.lib.vpe import VPE


def _make_sgate(env, rgate, label, credits=4):
    return env.syscall(syscalls.CREATE_SGATE, rgate.selector, label, credits)


def test_full_interposition_pipeline(system):
    """The clean end-to-end version: parent builds client/proxy/server,
    distributing capabilities by delegation."""

    def server(env):
        rgate = yield from RecvGate.create(env, slot_size=128, slot_count=4)
        sgate_sel = yield from _make_sgate(env, rgate, 0)
        env.system.blackboard["server_ready"].succeed(
            (env.vpe_id, sgate_sel)
        )
        for _ in range(2):
            slot, message = yield from rgate.receive()
            yield from rgate.reply(slot, ("echo", message.payload), 64)
        return "done"

    def proxy(env, back_sel):
        front = yield from RecvGate.create(env, slot_size=128, slot_count=4)
        front_sel = yield from _make_sgate(env, front, 0)
        env.system.blackboard["proxy_ready"].succeed((env.vpe_id, front_sel))
        back = SendGate(env, back_sel)
        reply_gate = BoundRecvGate(env, env.EP_REPLY)
        monitored = []
        for _ in range(2):
            slot, message = yield from front.receive()
            monitored.append(message.payload)
            answer = yield from back.call(message.payload, reply_gate)
            yield from front.reply(slot, answer.payload, 64)
        env.system.blackboard["monitored"] = monitored
        return "proxied"

    def client(env, gate_sel):
        gate = SendGate(env, gate_sel)
        reply_gate = BoundRecvGate(env, env.EP_REPLY)
        out = []
        for word in ("alpha", "beta"):
            answer = yield from gate.call(word, reply_gate)
            out.append(answer.payload)
        return out

    def parent(env):
        system_obj = env.system
        system_obj.blackboard = {
            "server_ready": env.sim.event("server_ready"),
            "proxy_ready": env.sim.event("proxy_ready"),
        }
        server_vpe = yield from VPE.create(env, "server")
        yield from server_vpe.run(server)
        server_id, server_sgate = yield system_obj.blackboard["server_ready"]
        # delegate the server's send gate to the proxy
        proxy_vpe = yield from VPE.create(env, "proxy")
        server_cap = system_obj.kernel.vpes[server_id].captable.get(
            server_sgate
        )
        back_sel = system_obj.kernel.vpes[
            proxy_vpe.vpe_id
        ].captable.insert(server_cap.derive())
        yield from proxy_vpe.run(proxy, back_sel)
        proxy_id, proxy_sgate = yield system_obj.blackboard["proxy_ready"]
        # the client only ever learns about the *proxy's* gate
        client_vpe = yield from VPE.create(env, "client")
        proxy_cap = system_obj.kernel.vpes[proxy_id].captable.get(proxy_sgate)
        client_sel = system_obj.kernel.vpes[
            client_vpe.vpe_id
        ].captable.insert(proxy_cap.derive())
        yield from client_vpe.run(client, client_sel)
        answers = yield from client_vpe.wait()
        yield from proxy_vpe.wait()
        yield from server_vpe.wait()
        return answers, system_obj.blackboard["monitored"]

    answers, monitored = system.run_app(parent, name="parent")
    assert answers == [("echo", "alpha"), ("echo", "beta")]
    assert monitored == ["alpha", "beta"]  # the proxy saw everything
