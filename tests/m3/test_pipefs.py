"""The pipe filesystem: pipes behind the VFS (Section 4.5.8)."""

import pytest

from repro.m3.lib.file import OpenFlags
from repro.m3.lib.pipefs import PipeFs
from repro.m3.services.m3fs.fs import FsError


def test_vfs_transparency_between_pipe_and_file(fs_system):
    """The same copy loop works on a pipe and on an m3fs file."""

    def copy(env, source, sink):
        while True:
            chunk = yield from source.read(512)
            if not chunk:
                break
            yield from sink.write(chunk)

    def app(env):
        pipefs = PipeFs(env)
        env.vfs.mount("/pipes", pipefs)
        # producer half: file -> pipe; consumer half: pipe -> file.
        f = yield from env.vfs.open("/in.dat", OpenFlags.W | OpenFlags.CREATE)
        yield from f.write(b"pipefs payload " * 40)
        yield from f.close()

        writer = yield from env.vfs.open("/pipes/stream", OpenFlags.W)
        reader = yield from env.vfs.open("/pipes/stream", OpenFlags.R)
        source = yield from env.vfs.open("/in.dat", OpenFlags.R)
        yield from copy(env, source, writer)
        yield from source.close()
        yield from writer.close()
        sink = yield from env.vfs.open("/out.dat",
                                       OpenFlags.W | OpenFlags.CREATE)
        yield from copy(env, reader, sink)
        yield from sink.close()
        out = yield from env.vfs.open("/out.dat", OpenFlags.R)
        data = yield from out.read(10_000)
        yield from out.close()
        return data

    assert fs_system.run_app(app) == b"pipefs payload " * 40


def test_pipe_end_exclusivity(system):
    def app(env):
        pipefs = PipeFs(env)
        env.vfs.mount("/p", pipefs)
        yield from env.vfs.open("/p/x", OpenFlags.W)
        try:
            yield from env.vfs.open("/p/x", OpenFlags.W)
        except FsError as exc:
            return str(exc)

    assert "already has a writer" in system.run_app(app)


def test_pipe_requires_single_direction(system):
    def app(env):
        pipefs = PipeFs(env)
        env.vfs.mount("/p", pipefs)
        try:
            yield from env.vfs.open("/p/x", OpenFlags.RW)
        except FsError as exc:
            return str(exc)

    assert "either to read or to write" in system.run_app(app)


def test_pipe_channels_reject_wrong_direction_and_seek(system):
    def app(env):
        pipefs = PipeFs(env)
        env.vfs.mount("/p", pipefs)
        writer = yield from env.vfs.open("/p/x", OpenFlags.W)
        reader = yield from env.vfs.open("/p/x", OpenFlags.R)
        errors = []
        try:
            yield from writer.read(1)
        except FsError as exc:
            errors.append("read-on-writer")
        try:
            yield from reader.write(b"x")
        except FsError as exc:
            errors.append("write-on-reader")
        try:
            yield from reader.seek(0)
        except FsError:
            errors.append("seek")
        return errors

    assert system.run_app(app) == ["read-on-writer", "write-on-reader", "seek"]


def test_pipefs_namespace_operations(system):
    def app(env):
        pipefs = PipeFs(env)
        env.vfs.mount("/p", pipefs)
        yield from env.vfs.open("/p/a", OpenFlags.W)
        yield from env.vfs.open("/p/b", OpenFlags.W)
        names = yield from env.vfs.readdir("/p")
        stat = yield from env.vfs.stat("/p/a")
        yield from env.vfs.unlink("/p/b")
        after = yield from env.vfs.readdir("/p")
        return names, stat, after

    names, stat, after = system.run_app(app)
    assert names == ["a", "b"]
    assert stat[0] == "pipe"
    assert after == ["a"]


def test_multiple_m3fs_instances():
    """Section 7 future work: several service instances, distinct
    namespaces, mounted side by side."""
    from repro.m3.lib.m3fs_client import M3fsClient
    from repro.m3.system import M3System

    system = M3System(pe_count=6).boot()  # default instance "m3fs"
    system.start_m3fs(name="m3fs2")
    assert set(system.fs_servers) == {"m3fs", "m3fs2"}

    def app(env):
        second = yield from M3fsClient.connect(env, service="m3fs2")
        env.vfs.mount("/two", second)
        f = yield from env.vfs.open("/one.txt", OpenFlags.W | OpenFlags.CREATE)
        yield from f.write(b"first instance")
        yield from f.close()
        g = yield from env.vfs.open("/two/two.txt",
                                    OpenFlags.W | OpenFlags.CREATE)
        yield from g.write(b"second instance")
        yield from g.close()
        return ()

    system.run_app(app)
    assert system.fs_servers["m3fs"].fs.exists("/one.txt")
    assert not system.fs_servers["m3fs"].fs.exists("/two.txt")
    assert system.fs_servers["m3fs2"].fs.exists("/two.txt")
    assert not system.fs_servers["m3fs2"].fs.exists("/one.txt")
    assert system.fs_read_back(
        "/two.txt", server=system.fs_servers["m3fs2"]
    ) == b"second instance"
