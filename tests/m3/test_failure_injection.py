"""Failure injection: misbehaving senders, overflow, malformed syscalls."""

import pytest

from repro.dtu.registers import EndpointRegisters
from repro.m3.kernel import syscalls
from repro.m3.kernel.kernel import SyscallError
from repro.m3.lib.gate import RecvGate, SendGate


def test_kernel_survives_message_from_unknown_vpe(system):
    """A syscall whose label matches no VPE is acked and dropped; the
    kernel keeps serving everyone else."""
    # Forge it kernel-side: configure a raw send EP with a bogus label.
    rogue = system.platform.pe(2).dtu

    def forge():
        yield from system.kernel.dtu.configure_remote(
            rogue.node, "configure", 5,
            EndpointRegisters.send_config(
                target_node=system.kernel.node, target_ep=0,
                label=9999, credits=2, msg_size=80,
            ),
        )

    system.sim.run_process(forge(), "forge")
    rogue.send(5, ("noop", ()), 16)
    system.sim.run()

    def app(env):
        yield from env.syscall(syscalls.NOOP)
        return "kernel alive"

    assert system.run_app(app) == "kernel alive"


def test_kernel_survives_malformed_arguments(system):
    """Wrong argument counts/types come back as errors, not crashes."""

    def app(env):
        errors = []
        for bad_args in (
            (syscalls.CREATE_VPE,),                 # too few args
            (syscalls.DELEGATE, "x", "y"),          # wrong types
            (syscalls.REQUEST_MEM, -5, 2),          # negative size
            (syscalls.ACTIVATE, 2, 9999),           # unknown selector
        ):
            try:
                yield from env.syscall(*bad_args)
            except SyscallError:
                errors.append(bad_args[0])
        yield from env.syscall(syscalls.NOOP)  # still alive
        return errors

    errors = system.run_app(app)
    assert len(errors) == 4


def test_ring_overflow_drops_but_system_recovers(system):
    """A receiver that hands out more credits than slots loses messages
    (the paper's warning) — but the channel keeps working afterwards."""

    def receiver(env, board):
        rgate = yield from RecvGate.create(env, slot_size=64, slot_count=2)
        sgate_sel = yield from env.syscall(
            syscalls.CREATE_SGATE, rgate.selector, 0, 8  # credits > slots!
        )
        board["ready"].succeed((env.vpe_id, sgate_sel))
        received = []
        while len(received) < 3:
            slot, message = yield from rgate.receive()
            yield env.compute(5_000)  # a slow consumer
            received.append(message.payload)
            rgate.ack(slot)
        return received

    board = {"ready": system.sim.event("ready")}
    receiver_vpe = system.spawn(receiver, board, name="receiver")
    system.sim.run()
    owner_id, sgate_sel = board["ready"].value

    def sender(env):
        cap = system.kernel.vpes[owner_id].captable.get(sgate_sel)
        own = system.kernel.vpes[env.vpe_id].captable.insert(cap.derive())
        gate = SendGate(env, own)
        # burst of 6: two slots and a slow consumer, so some are
        # dropped on the floor (8 credits never throttle the burst)
        for index in range(6):
            yield from gate.send(("burst", index), 24)
        yield 30_000  # receiver drains what survived
        # careful follow-ups arrive fine
        for index in range(2):
            yield from gate.send(("careful", index), 24)
            yield 8_000
        return ()

    system.run_app(sender, name="sender")
    received = system.wait(receiver_vpe)
    dtu = system.platform.pes[receiver_vpe.node].dtu
    assert dtu.messages_dropped > 0  # the burst overflowed
    assert len(received) == 3  # yet the channel recovered


def test_revoked_session_gate_cuts_service_access(fs_system):
    """Revoking the session's send capability cuts the client off from
    m3fs at the hardware level."""
    from repro.m3.lib.file import OpenFlags
    from repro.m3.services.m3fs.fs import FsError

    def app(env):
        yield from env.vfs.stat("/")  # establish the session
        client = env.vfs.mounts[0][1]
        yield from env.syscall(syscalls.REVOKE, client.sgate.selector)
        try:
            yield from client.stat("/")
        except Exception as exc:
            return type(exc).__name__

    assert fs_system.run_app(app) == "NoPermission"
