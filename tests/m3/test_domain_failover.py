"""Surviving kernel-domain failure: idempotent inter-kernel RPC with
retry/backoff, heartbeat-based failure detection with failover, and
VPE checkpoint/restore migration."""

import pytest

from repro import params
from repro.dtu.registers import MemoryPerm
from repro.faults import FaultPlan
from repro.m3.kernel import syscalls
from repro.m3.kernel.capability import CapKind
from repro.m3.kernel.kernel import SyscallError
from repro.m3.kernel.objects import RemoteVpeObject
from repro.m3.kernel.vpe import VpeState
from repro.m3.lib.gate import MemGate
from repro.m3.lib.vpe import VPE
from repro.m3.system import M3System


def _spin(env):
    while True:  # only a fault stops this VPE
        yield env.compute(1_000)


# -- idempotent inter-kernel RPC ---------------------------------------------


def test_delayed_replies_force_retries_but_execute_once():
    """Replies to kernel 0 outlast the RPC timeout, so every request is
    retransmitted at the kernel level — and the peer's dedup (inflight
    acks + reply cache) must absorb the duplicates: the spilled child
    is created exactly once and still returns the right answer."""
    system = M3System(pe_count=4, kernel_count=2, reliable=True)
    k0, k1 = system.kernels
    plan = FaultPlan(seed=3).delay(
        1.0, cycles=(3_000, 3_000), kinds=("reply",), destination=k0.node
    )
    plan.install(system.platform)
    system.boot(with_fs=False)

    def child(env, x):
        yield env.sim.delay(100)
        return x * 2

    def parent(env):
        vpe = yield from VPE.create(env, name="spilled")
        yield from vpe.run(child, 21)
        return (yield from vpe.wait())

    vpe = system.spawn(parent, name="parent", domain=0)
    assert system.wait(vpe) == 42
    assert k0.ik_retries >= 1  # every reply arrived after the timeout
    assert k1.ik_duplicates >= 1  # ... so the peer saw duplicate copies
    assert k0.ik_timeouts == 0  # but no RPC was given up on
    assert len(k1.vpes) == 1  # create_vpe executed once, not per copy
    system.sim.run()  # drain the remaining retry timers
    assert not k0._ik_outstanding and not k0._ik_pending


def test_unanswered_rpc_times_out_with_capped_backoff():
    """A peer whose core died (but whose DTU still hardware-acks) never
    replies: the RPC is retried on an exact, capped exponential
    schedule and then completed with a timeout verdict."""
    system = M3System(pe_count=4, kernel_count=2, reliable=True)
    system.boot(with_fs=False)
    k0, k1 = system.kernels
    k1.pe.fail(cause="halted for the test")  # core dies, DTU answers

    verdicts = []
    k0._ik_request(
        1, "heartbeat", (0,),
        lambda payload: verdicts.append((system.sim.now, payload)),
    )
    system.sim.run()

    assert len(verdicts) == 1
    verdict_at, (status, detail) = verdicts[0]
    assert status == "timeout"
    assert f"no reply after {params.IK_RPC_MAX_ATTEMPTS} attempts" in detail
    assert k0.ik_timeouts == 1
    # Retry schedule: base * 2^n, exactly — bit-identical across runs.
    times = [now for now, _neg, _attempt in k0.ik_retry_log]
    assert len(times) == params.IK_RPC_MAX_ATTEMPTS - 1
    deltas = [later - earlier for earlier, later in zip(times, times[1:])]
    base = params.IK_RPC_TIMEOUT_CYCLES
    assert deltas == [base * 2, base * 4, base * 8]
    # The last interval (before the verdict) hits the deterministic cap
    # instead of doubling again.
    assert verdict_at - times[-1] == params.IK_RPC_TIMEOUT_CAP_CYCLES
    assert base * params.IK_RPC_BACKOFF ** 4 > params.IK_RPC_TIMEOUT_CAP_CYCLES


# -- heartbeats and failover --------------------------------------------------


def test_heartbeats_detect_dead_kernel_and_fail_over():
    """Kill kernel domain 1's kernel core mid-run: domain 0's heartbeat
    ring declares it dead after the miss limit, quarantines its PEs,
    and err-replies the cross-domain wait parked on it."""
    system = M3System(pe_count=4, kernel_count=2, reliable=True)
    k0, k1 = system.kernels
    kill_at = 10_000
    FaultPlan(seed=2).kill_pe(node=k1.node, at=kill_at).install(
        system.platform
    )
    system.boot(with_fs=False)
    system.start_heartbeats()

    def parent(env):
        vpe = yield from VPE.create(env, name="castaway")
        yield from vpe.run(_spin)
        try:
            yield from vpe.wait()
            return "wait returned (unexpected)"
        except SyscallError as exc:
            return f"wait err-replied: {exc}"

    vpe = system.spawn(parent, name="parent", domain=0)
    outcome = system.wait(vpe)
    system.stop_heartbeats()
    system.sim.run()

    assert "kernel domain 1 failed" in outcome
    assert k0.dead_peers == {1}
    assert len(k0.failover_log) == 1
    peer, detected, completed, reason = k0.failover_log[0]
    assert peer == 1
    assert detected > kill_at
    assert completed >= detected
    assert "heartbeat timeouts" in reason
    # The whole dead domain is quarantined, not just the kernel node.
    assert all(system.platform.pe(node).failed for node in sorted(k1.domain))
    # The proxy is dead, no parked wait or outstanding RPC remains.
    proxies = [
        cap.obj for cap in vpe.captable.caps()
        if cap.table is not None and isinstance(cap.obj, RemoteVpeObject)
    ]
    assert proxies and all(p.state == VpeState.DEAD for p in proxies)
    assert all(not v.remote_waiters for v in k0.vpes.values())
    assert not k0._ik_pending and not k0._ik_outstanding


def test_failover_is_deterministic():
    def run_once():
        system = M3System(pe_count=4, kernel_count=2, reliable=True)
        k1 = system.kernels[1]
        plan = FaultPlan(seed=9).drop(0.01)
        plan.kill_pe(node=k1.node, at=10_000)
        plan.install(system.platform)
        system.boot(with_fs=False)
        system.start_heartbeats()

        def parent(env):
            vpe = yield from VPE.create(env, name="castaway")
            yield from vpe.run(_spin)
            try:
                yield from vpe.wait()
            except SyscallError as exc:
                return str(exc), env.sim.now

        vpe = system.spawn(parent, name="parent", domain=0)
        outcome = system.wait(vpe)
        system.stop_heartbeats()
        system.sim.run()
        k0 = system.kernels[0]
        return (outcome, k0.failover_log, list(k0.ik_retry_log),
                k0.ik_retries, k0.ik_timeouts, system.sim.now)

    assert run_once() == run_once()


# -- remote-domain watchdog recovery (spilled VPEs) ---------------------------


def test_remote_watchdog_recovers_spilled_vpe_and_unparks_wait():
    """A VPE spilled into a peer domain dies (its PE's core is killed):
    the *owning* domain's watchdog detects it, the parked cross-domain
    VPE_WAIT is err-replied, the parent-side proxy goes DEAD, and the
    parent's foreign memory capabilities at the dead node are cut."""
    system = M3System(pe_count=4, kernel_count=2, reliable=True)
    k0, k1 = system.kernels
    child_node = 3  # domain 1 = {2, 3}, kernel on 2: the spill target
    FaultPlan(seed=4).kill_pe(node=child_node, at=10_000).install(
        system.platform
    )
    system.boot(with_fs=False)
    k1.start_watchdog(period=2_000)

    def parent(env):
        gate = yield from MemGate.create(env, 4096, MemoryPerm.RW.value)
        vpe = yield from VPE.create(env, name="spilled")
        yield from vpe.delegate_gate(gate)
        yield from vpe.run(_spin)
        try:
            yield from vpe.wait()
            return "wait returned (unexpected)"
        except SyscallError as exc:
            return f"wait err-replied: {exc}"

    vpe = system.spawn(parent, name="parent", domain=0)
    outcome = system.wait(vpe)
    k1.stop_watchdog()
    system.sim.run()  # drain the foreign-cap revocation sweep

    assert "err-replied" in outcome and "failed" in outcome
    assert k1.recoveries == 1
    spilled = next(iter(k1.vpes.values()))
    assert spilled.node == child_node
    assert spilled.state == VpeState.DEAD
    assert spilled.exit_code[0] == "failed"
    assert not spilled.remote_waiters
    # Parent side: the remote proxy is DEAD and the SPM stub (a foreign
    # MEM capability pointing at the dead node) was revoked.
    proxies = [
        cap.obj for cap in vpe.captable.caps()
        if cap.table is not None and isinstance(cap.obj, RemoteVpeObject)
    ]
    assert proxies and all(p.state == VpeState.DEAD for p in proxies)
    assert not any(
        cap.foreign and cap.obj.node == child_node
        for cap in vpe.captable.caps()
        if cap.table is not None and cap.kind == CapKind.MEM
    )


# -- checkpoint/restore migration ---------------------------------------------


def _journaling_child(env, rounds):
    """Stamp one byte per round into SPM; verify the journal at exit."""
    base = env.alloc_buffer(256)
    for index in range(rounds):
        env.pe.spm_data.write(base + index, bytes([(index * 5 + 1) % 256]))
        yield env.compute(500)
        yield from env.syscall(syscalls.NOOP)
    stamped = bytes(env.pe.spm_data.read(base, rounds))
    expected = bytes((index * 5 + 1) % 256 for index in range(rounds))
    return ("ok" if stamped == expected else "corrupt", env.pe.node)


def test_live_migration_round_trips_spm_and_syscall_channel():
    """migrate_vpe moves a running VPE to a free PE: the SPM journal
    survives (checkpoint + final sync pass), the syscall channel keeps
    working from the new node, and the old PE is released after the
    redirect window closes."""
    system = M3System(pe_count=6).boot(with_fs=False)
    rounds = 20

    def parent(env):
        vpe = yield from VPE.create(env, "mover")
        yield from vpe.run(_journaling_child, rounds)
        yield env.compute(rounds * 500 // 2)  # let it get about halfway
        new_node = yield from vpe.migrate()
        verdict, final_node = yield from vpe.wait()
        return verdict, new_node, final_node

    verdict, new_node, final_node = system.run_app(parent, name="parent")
    system.sim.run()  # close the redirect window

    assert verdict == "ok"
    assert final_node == new_node
    kernel = system.kernel
    assert kernel.migrations == 1
    mover = next(v for v in kernel.vpes.values() if v.name == "mover")
    assert mover.migrations == 1
    checkpoint = mover.last_checkpoint
    assert checkpoint is not None
    assert checkpoint.spm_bytes > 0
    assert checkpoint.node != new_node
    # The origin PE is healthy and free again, not leaked as reserved.
    origin = system.platform.pe(checkpoint.node)
    assert not origin.failed and not origin.reserved
    assert origin.occupant is None


def test_migrating_a_remote_vpe_is_rejected():
    system = M3System(pe_count=4, kernel_count=2, reliable=True)
    system.boot(with_fs=False)

    def parent(env):
        vpe = yield from VPE.create(env, name="spilled")  # spills to dom 1
        yield from vpe.run(_spin)
        try:
            yield from vpe.migrate()
            return "migrated (unexpected)"
        except SyscallError as exc:
            return str(exc)

    vpe = system.spawn(parent, name="parent", domain=0)
    assert "cannot live-migrate a remote VPE" in system.wait(vpe)


def test_watchdog_migrate_recovery_restores_spm_progress():
    """Recover-by-migrate: the core dies, the kernel salvages the SPM
    image off the dead node's DTU and restarts the entry on a free PE —
    where it finds its previous progress in the restored image."""
    system = M3System(pe_count=6, reliable=True)
    # Deterministic placement: kernel=0, the child takes node 1.
    FaultPlan(seed=6).kill_pe(node=1, at=4_000).install(system.platform)
    system.boot(with_fs=False)
    system.kernel.start_watchdog(period=1_000, recovery="migrate")
    rounds = 12

    def phoenix(env, total):
        base = env.alloc_buffer(256)
        found = 0
        while (found < total
               and env.pe.spm_data.read(base + found, 1)[0] == found % 9 + 1):
            found += 1
        for index in range(found, total):
            env.pe.spm_data.write(base + index, bytes([index % 9 + 1]))
            yield env.compute(600)
        return found, env.pe.node

    vpe = system.spawn(phoenix, rounds, name="phoenix")
    found, node = system.wait(vpe)
    system.kernel.stop_watchdog()
    system.sim.run()

    assert found > 0  # the restart found prior progress in the image
    assert found < rounds  # ... but the kill really was mid-run
    assert node != 1
    assert system.platform.pe(1).failed  # dead node quarantined
    assert system.kernel.migrations == 1
    assert system.kernel.recoveries == 0  # no fall-back to kill recovery
    assert vpe.migrations == 1


def test_checkpoint_requires_a_resident_vpe():
    system = M3System(pe_count=4).boot(with_fs=False)

    def app(env):
        yield env.sim.delay(10)
        return ()

    vpe = system.spawn(app, name="app")
    system.wait(vpe)
    vpe.resident = False
    with pytest.raises(SyscallError, match="not resident"):
        list(system.kernel.checkpoint_vpe(vpe))


# -- heartbeat plumbing -------------------------------------------------------


def test_heartbeat_requires_peers():
    system = M3System(pe_count=4).boot(with_fs=False)
    with pytest.raises(RuntimeError, match="no peers"):
        system.kernel.start_heartbeat()


def test_start_heartbeats_only_touches_partitioned_kernels():
    # kernel_count=1: no peers anywhere, so this must be a no-op rather
    # than an error.
    system = M3System(pe_count=4).boot(with_fs=False)
    system.start_heartbeats()
    system.stop_heartbeats()
    assert system.kernel.heartbeats_sent == 0
