"""PE time-multiplexing (context switching) — the Section 3.3/7 extension."""

import pytest

from repro.m3.kernel.kernel import SyscallError
from repro.m3.lib.vpe import VPE
from repro.m3.system import M3System


def _mux_system(pe_count=2, **kwargs):
    return M3System(pe_count=pe_count, multiplexing=True, **kwargs).boot(
        with_fs=False
    )


def test_without_multiplexing_creation_fails_when_pes_exhausted():
    system = M3System(pe_count=2).boot(with_fs=False)

    def parent(env):
        try:
            yield from VPE.create(env, "child")
        except SyscallError as exc:
            return str(exc)

    assert "no free PE" in system.run_app(parent)


def test_child_runs_on_parents_pe_via_context_switch():
    """One application PE, two VPEs: the parent yields, the child runs
    on the same PE, the parent is restored and gets the exit code."""
    system = _mux_system(pe_count=2)

    def child(env, value):
        yield env.compute(5_000)
        return ("child-ran-on", env.pe.node, value)

    def parent(env):
        own_node = env.pe.node
        vpe = yield from VPE.create(env, "child")
        yield from vpe.run(child, 42)
        result = yield from vpe.wait_yield()
        return own_node, result

    parent_node, result = system.run_app(parent, name="parent")
    assert result == ("child-ran-on", parent_node, 42)
    assert system.kernel.ctxsw.switch_count >= 2  # out + in (at least)


def test_multiple_children_share_one_pe():
    system = _mux_system(pe_count=2)

    def child(env, index):
        yield env.compute(1_000)
        return index

    def parent(env):
        results = []
        for index in range(3):
            vpe = yield from VPE.create(env, f"child{index}")
            yield from vpe.run(child, index)
            results.append((yield from vpe.wait_yield()))
        return results

    assert system.run_app(parent) == [0, 1, 2]


def test_switch_costs_time():
    """The direct context-switch cost (save + restore of the SPM image)
    must show up — Section 3.4's utilization-vs-performance trade."""

    def child(env):
        yield env.compute(1_000)
        return ()

    def parent(env):
        start = env.sim.now
        vpe = yield from VPE.create(env, "child")
        yield from vpe.run(child)
        yield from vpe.wait_yield()
        return env.sim.now - start

    # Dedicated PEs: no switch needed.
    dedicated = M3System(pe_count=3, multiplexing=True).boot(with_fs=False)
    fast = dedicated.run_app(parent, name="p1")
    assert dedicated.kernel.ctxsw.switch_count == 0

    # Shared PE: two switches, each moving the 64 KiB SPM image.
    shared = _mux_system(pe_count=2)
    slow = shared.run_app(parent, name="p2")
    image_cycles = 64 * 1024 // 8
    assert slow - fast > 2 * image_cycles


def test_spm_image_round_trips_through_staging():
    """Bytes the parent had in its SPM survive being switched out."""
    system = _mux_system(pe_count=2)
    marker = b"parent state that must survive the switch"

    def child(env):
        # scribble over the (shared) SPM to prove restoration matters
        env.pe.spm_data.write(0, b"\xde\xad" * 64)
        yield env.compute(100)
        return ()

    def parent(env):
        address = env.alloc_buffer(len(marker))
        env.pe.spm_data.write(address, marker)
        vpe = yield from VPE.create(env, "child")
        yield from vpe.run(child)
        yield from vpe.wait_yield()
        return env.pe.spm_data.read(address, len(marker))

    assert system.run_app(parent) == marker


def test_plain_wait_does_not_switch():
    """Only the yielding wait offers the PE; a busy parent keeps it."""
    system = _mux_system(pe_count=2)

    def child(env):
        yield env.compute(100)
        return "ran"

    def parent(env):
        vpe = yield from VPE.create(env, "child")
        yield from vpe.run(child)
        # The parent spins instead of yielding; the child only gets the
        # PE when the parent finally yields.
        yield env.compute(50_000)
        assert system.kernel.ctxsw.switch_count == 0
        result = yield from vpe.wait_yield()
        return result

    assert system.run_app(parent) == "ran"


def test_accelerators_are_not_multiplexed():
    """"some accelerators might be excluded" (Section 3.3)."""
    system = M3System(
        pe_count=1, accelerators={"fft-asic": 1}, multiplexing=True
    ).boot(with_fs=False)
    # PE1 is the ASIC; the only general-purpose app PE is... none free
    # after the parent occupies the only xtensa PE — and the ASIC must
    # not be chosen as a multiplexing victim for a general-purpose VPE.

    def parent(env):
        try:
            vpe = yield from VPE.create(env, "gp-child")
        except SyscallError as exc:
            return str(exc)
        # If created, it must be queued on a general-purpose PE.
        child = system.kernel.vpes[vpe.vpe_id]
        return child.pe.core.type.name

    result = system.run_app(parent)
    assert result == "xtensa" or "no free PE" in result


def test_exec_into_multiplexed_vpe():
    """exec writes the image into the staging area, not the busy SPM."""
    # Three PEs: kernel, m3fs, parent — the exec'd child must be
    # multiplexed onto the parent's PE.
    system = M3System(pe_count=3, multiplexing=True).boot(with_fs=True)

    def program(env, x):
        yield env.compute(10)
        return ("program", x)

    system.register_program("prog", program)

    from repro.m3.lib.file import OpenFlags

    def parent(env):
        f = yield from env.vfs.open("/prog", OpenFlags.W | OpenFlags.CREATE)
        yield from f.write(b"binary" * 100)
        yield from f.close()
        vpe = yield from VPE.create(env, "exec-child")
        yield from vpe.exec("/prog", 7)
        return (yield from vpe.wait_yield())

    assert system.run_app(parent) == ("program", 7)
