"""Cross-domain live migration: checkpoint over the idempotent
inter-kernel RPC (``ik_migrate_in``), the DTU redirect window spanning
domains, parked waits following the VPE, and the PE accounting of a
migration that fails midway."""

from repro import params
from repro.faults import FaultPlan
from repro.m3.kernel.kernel import SyscallError
from repro.m3.kernel.objects import RemoteVpeObject
from repro.m3.kernel.vpe import VpeState
from repro.m3.lib.vpe import VPE
from repro.m3.system import M3System


def _spin(env):
    while True:  # only a fault (or a revoke) stops this VPE
        yield env.compute(1_000)


def _worker(env, rounds, verdict):
    """Computes and keeps exercising the syscall channel; the rounds
    outlast a live migration, so the rewired channel gets used."""
    from repro.m3.kernel import syscalls

    for _ in range(rounds):
        yield env.compute(3_000)
        yield from env.syscall(syscalls.NOOP)
    return verdict


# -- the happy path -----------------------------------------------------------


def test_cross_domain_migration_round_trips_vpe_and_wait():
    """An app live-migrates its child into a peer kernel domain via the
    ``migrate_vpe`` syscall: the child keeps computing and syscalling
    across the move (now against the *target* kernel), the parent's
    capability swaps to a remote proxy, and the wait verdict crosses
    the domain boundary."""
    system = M3System(pe_count=6, kernel_count=2, reliable=True)
    k0, k1 = system.kernels
    system.boot(with_fs=False)

    def parent(env):
        vpe = yield from VPE.create(env, name="mover")
        yield from vpe.run(_worker, 40, 777)
        remote_id, node = yield from vpe.migrate(domain=1)
        verdict = yield from vpe.wait()
        return remote_id, node, verdict

    parent_vpe = system.spawn(parent, name="parent", domain=0)
    remote_id, node, verdict = system.wait(parent_vpe)
    system.sim.run()  # drain the redirect-window close

    assert verdict == 777
    assert node in k1.domain and node != k1.node
    assert k0.migrations_out == 1
    assert k1.migrations_in == 1
    # The target kernel owns the VPE now (under its own minted id);
    # the source kernel only remembers the forwarding entry.
    moved = k1.vpes[remote_id]
    assert moved.name == "mover" and moved.state == VpeState.DEAD
    assert moved.exit_code == 777
    assert all(v.name != "mover" for v in k0.vpes.values())
    assert k0._migrated_out  # old id -> (peer, new id)
    # The parent's capability now holds the child through a proxy that
    # tracked the forwarded verdict.
    proxies = [
        cap.obj for cap in parent_vpe.captable.caps()
        if cap.table is not None and isinstance(cap.obj, RemoteVpeObject)
    ]
    assert proxies and proxies[0].state == VpeState.DEAD
    assert proxies[0].exit_code == 777
    assert proxies[0].kernel_id == 1
    # Once the redirect window closed, the child's old PE (domain 0)
    # was wiped and released — no PE leaks from the crossing.
    assert all(
        not system.platform.pe(n).reserved
        for n in sorted(k0.domain) if n != k0.node
    )


# -- duplicate delivery -------------------------------------------------------


def test_duplicate_migrate_in_delivery_restores_exactly_once():
    """Every reply toward the source kernel outlasts the inter-kernel
    RPC timeout, so ``ik_migrate_in`` is retransmitted at the kernel
    level — and the peer's dedup must absorb the duplicates: the VPE
    re-materializes exactly once and the verdict is still correct."""
    system = M3System(pe_count=6, kernel_count=2, reliable=True)
    k0, k1 = system.kernels
    FaultPlan(seed=6).delay(
        1.0, cycles=(3_000, 3_000), kinds=("reply",), destination=k0.node
    ).install(system.platform)
    system.boot(with_fs=False)

    def parent(env):
        vpe = yield from VPE.create(env, name="mover")
        yield from vpe.run(_worker, 40, 42)
        remote_id, _node = yield from vpe.migrate(domain=1)
        verdict = yield from vpe.wait()
        return remote_id, verdict

    remote_id, verdict = system.wait(
        system.spawn(parent, name="parent", domain=0)
    )
    system.sim.run()

    assert verdict == 42
    assert k0.ik_retries > 0  # the delayed replies forced retransmits
    assert k1.ik_duplicates > 0  # ...which the dedup absorbed
    assert k1.migrations_in == 1
    assert sum(1 for v in k1.vpes.values() if v.name == "mover") == 1
    assert k1.vpes[remote_id].exit_code == 42


# -- target domain dies inside the redirect window ----------------------------


def test_target_domain_dies_inside_redirect_window():
    """The whole target domain fails right after the migration — while
    the source DTU is still forwarding in-flight traffic across the
    boundary.  Heartbeats declare the domain dead, the forwarded wait
    is err-replied, and the source-side PE still gets released when
    the redirect window closes."""
    system = M3System(pe_count=6, kernel_count=2, reliable=True)
    k0, k1 = system.kernels
    system.boot(with_fs=False)
    system.start_heartbeats()
    checkpoints = {}

    def parent(env):
        vpe = yield from VPE.create(env, name="castaway")
        yield from vpe.run(_spin)
        try:
            yield from vpe.wait()
            return "wait returned (unexpected)"
        except SyscallError as exc:
            return f"wait err-replied: {exc}"

    def blackout():
        # Wait-parked first (the parent is already blocked in vpe_wait),
        # then migrate the child out from under it and kill the target
        # domain before the redirect window can close.
        yield system.sim.delay(6_000)
        child = next(v for v in k0.vpes.values() if v.name == "castaway")
        old_node = child.node
        assert child.waiters  # the parent's wait is parked locally
        _new_id, new_node = yield from k0.migrate_vpe_cross(child, 1)
        # Still inside the window: the old DTU forwards to the peer
        # domain this very cycle.
        assert system.platform.pe(old_node).dtu.redirect_to == new_node
        checkpoints["old_node"] = old_node
        for node in sorted(k1.domain):
            system.platform.pe(node).fail("domain-blackout")

    system.sim.process(blackout(), "blackout")
    parent_vpe = system.spawn(parent, name="parent", domain=0)
    outcome = system.wait(parent_vpe)
    system.stop_heartbeats()
    system.sim.run()

    assert "err-replied" in outcome and "kernel domain 1 failed" in outcome
    assert k0.dead_peers == {1}
    assert k0.migrations_out == 1
    # The forwarded wait resolved the proxy as failed.
    proxies = [
        cap.obj for cap in parent_vpe.captable.caps()
        if cap.table is not None and isinstance(cap.obj, RemoteVpeObject)
    ]
    assert proxies and proxies[0].state == VpeState.DEAD
    assert proxies[0].exit_code[0] == "failed"
    # The redirect window closed over a dead destination without
    # stranding the source PE.
    old_pe = system.platform.pe(checkpoints["old_node"])
    assert old_pe.dtu.redirect_to is None
    assert not old_pe.reserved and old_pe.occupant is None


# -- a parked cross-domain wait follows a second migration --------------------


def test_parked_cross_domain_wait_follows_migration():
    """Domain 0 waits on a child spilled into domain 1; the child then
    live-migrates to domain 2 *after* the wait was parked.  The parked
    inter-kernel wait is re-parked at the new owner and the verdict
    passes straight through the middle domain."""
    system = M3System(pe_count=9, kernel_count=3, reliable=True)
    k0, k1, k2 = system.kernels
    system.boot(with_fs=False)

    def hog(env):
        yield env.compute(400_000)

    def parent(env):
        vpe = yield from VPE.create(env, name="walker")
        yield from vpe.run(_worker, 40, 13)
        verdict = yield from vpe.wait()
        return verdict

    def mover():
        yield system.sim.delay(12_000)
        child = next(v for v in k1.vpes.values() if v.name == "walker")
        assert child.remote_waiters  # domain 0's wait is parked here
        yield from k1.migrate_vpe_cross(child, 2)

    # Fill domain 0 so the child spills into domain 1.
    system.spawn(hog, name="hog", domain=0)
    system.sim.process(mover(), "mover")
    parent_vpe = system.spawn(parent, name="parent", domain=0)
    verdict = system.wait(parent_vpe)

    assert verdict == 13
    assert k1.migrations_out == 1
    assert k2.migrations_in == 1
    moved = next(v for v in k2.vpes.values() if v.name == "walker")
    assert moved.state == VpeState.DEAD and moved.exit_code == 13
    assert not moved.remote_waiters
    # Domain 0's proxy never learned about the second hop — the wait
    # verdict passed through the middle domain's forwarding entry.
    proxies = [
        cap.obj for cap in parent_vpe.captable.caps()
        if cap.table is not None and isinstance(cap.obj, RemoteVpeObject)
    ]
    assert proxies and proxies[0].kernel_id == 1
    assert proxies[0].exit_code == 13
    assert k1._migrated_out  # the pass-through forwarding entry


# -- regression: a failed migration must release the reserved target PE ------


def test_failed_migration_releases_reserved_target_pe():
    """The child dies (PE fault + watchdog kill) while the kernel is
    checkpointing it for an intra-domain migration.  The syscall fails
    — and the *target* PE the kernel had reserved must be released, or
    the domain leaks one PE per failed migration."""
    system = M3System(pe_count=4, kernel_count=1)
    # The checkpoint runs roughly cycles 5.5k-14.5k (64 KiB SPM over
    # the DTU); the kill lands inside it and the watchdog notices well
    # before the checkpoint transfer completes.
    FaultPlan(seed=5).kill_pe(node=2, at=8_000).install(system.platform)
    system.boot(with_fs=False)
    kernel = system.kernels[0]
    kernel.start_watchdog(period=500)

    def parent(env):
        vpe = yield from VPE.create(env, name="doomed")
        yield from vpe.run(_spin)
        try:
            node = yield from vpe.migrate()
            return f"migrated to {node} (unexpected)"
        except SyscallError as exc:
            return str(exc)

    outcome = system.run_app(parent, name="parent")
    kernel.stop_watchdog()
    system.sim.run()

    assert "died during checkpoint" in outcome
    platform = system.platform
    # Node 3 was the reserved migration target; node 2 died.  Exact
    # accounting: the allocator must hand out nodes 1 and 3 and then
    # be empty — a leaked reservation would surface as a missing PE.
    assert not platform.pe(3).reserved
    first = platform.find_free_pe()
    assert first is not None
    first.reserve()
    second = platform.find_free_pe()
    assert second is not None
    second.reserve()
    assert {first.node, second.node} == {1, 3}
    assert platform.find_free_pe() is None


def test_cross_migration_rejects_unknown_peer():
    system = M3System(pe_count=6, kernel_count=2, reliable=True)
    k0, _k1 = system.kernels
    system.boot(with_fs=False)

    def parent(env):
        vpe = yield from VPE.create(env, name="stay")
        yield from vpe.run(_worker, 4, 0)
        try:
            yield from vpe.migrate(domain=7)
            return "migrated (unexpected)"
        except SyscallError as exc:
            return str(exc)

    outcome = system.run_app(parent, name="parent")
    assert "no peer kernel domain 7" in outcome
    assert k0.migrations_out == 0
