"""Unit and property tests for the kernel's DRAM allocator."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.m3.kernel.memmgr import MemoryManager, OutOfMemory


def test_simple_allocation_progression():
    mm = MemoryManager(0, 1024)
    a = mm.allocate(128)
    b = mm.allocate(128)
    assert a != b
    assert mm.free_bytes == 1024 - 256


def test_alignment_respected():
    mm = MemoryManager(0, 1024)
    mm.allocate(10, align=1)
    aligned = mm.allocate(16, align=256)
    assert aligned % 256 == 0


def test_exhaustion_raises():
    mm = MemoryManager(0, 256)
    mm.allocate(256, align=1)
    with pytest.raises(OutOfMemory):
        mm.allocate(1)


def test_free_allows_reuse():
    mm = MemoryManager(0, 256)
    address = mm.allocate(256, align=1)
    mm.free(address, 256)
    assert mm.allocate(256, align=1) == address


def test_coalescing_restores_large_hole():
    mm = MemoryManager(0, 1024)
    a = mm.allocate(512, align=1)
    b = mm.allocate(512, align=1)
    mm.free(a, 512)
    mm.free(b, 512)
    assert mm.largest_hole == 1024


def test_double_free_detected():
    mm = MemoryManager(0, 1024)
    a = mm.allocate(64, align=1)
    mm.free(a, 64)
    with pytest.raises(ValueError):
        mm.free(a, 64)


def test_free_outside_region_rejected():
    mm = MemoryManager(100, 100)
    with pytest.raises(ValueError):
        mm.free(0, 50)


def test_invalid_sizes_rejected():
    with pytest.raises(ValueError):
        MemoryManager(0, 0)
    mm = MemoryManager(0, 64)
    with pytest.raises(ValueError):
        mm.allocate(0)
    with pytest.raises(ValueError):
        mm.allocate(8, align=0)


@given(st.data())
def test_allocations_are_disjoint_and_in_bounds(data):
    mm = MemoryManager(0, 4096)
    live = []
    for _ in range(data.draw(st.integers(min_value=1, max_value=40))):
        if live and data.draw(st.booleans()):
            address, size = live.pop(data.draw(
                st.integers(min_value=0, max_value=len(live) - 1)))
            mm.free(address, size)
            continue
        size = data.draw(st.integers(min_value=1, max_value=512))
        try:
            address = mm.allocate(size, align=data.draw(
                st.sampled_from([1, 8, 64])))
        except OutOfMemory:
            continue
        assert 0 <= address and address + size <= 4096
        for other_addr, other_size in live:
            assert address + size <= other_addr or other_addr + other_size <= address
        live.append((address, size))
    assert mm.free_bytes == 4096 - sum(size for _, size in live)
