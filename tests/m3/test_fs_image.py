"""m3fs persistence: the on-disk image format (Section 4.5.8's claim
that the layout is "suitable for persistent storage")."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.m3.services.m3fs import image
from repro.m3.services.m3fs.fs import FsError, M3FS
from repro.m3.services.m3fs.superblock import SuperBlock


def _fs(reserve=image.META_BLOCKS):
    return M3FS(SuperBlock(total_blocks=512), append_blocks=8,
                reserve_meta_blocks=reserve)


def _populate(fs):
    fs.mkdir("/etc")
    fs.mkdir("/etc/init.d")
    passwd = fs.create("/etc/passwd")
    fs.append_extent(passwd, 4)
    fs.truncate(passwd, 3000)
    fs.link("/etc/passwd", "/etc/shadow")
    big = fs.create("/big")
    fs.append_extent(big, 8)
    fs.append_extent(big, 8)
    fs.truncate(big, 12 * 1024)
    return fs


def _structure(fs):
    """Comparable snapshot: paths -> (kind, size, links, extents)."""
    snapshot = {}

    def walk(prefix, inode):
        snapshot[prefix or "/"] = (
            inode.kind, inode.size, inode.links, tuple(inode.extents)
        )
        if inode.is_dir:
            for name, ino in sorted(inode.entries.items()):
                walk(f"{prefix}/{name}", fs.inodes[ino])

    walk("", fs.inodes[M3FS.ROOT_INO])
    return snapshot


def test_serialize_roundtrip_preserves_structure():
    fs = _populate(_fs())
    restored = image.deserialize(image.serialize(fs))
    assert _structure(restored) == _structure(fs)
    assert restored.block_bitmap.used == fs.block_bitmap.used
    assert restored.inode_bitmap.used == fs.inode_bitmap.used
    assert restored.append_blocks == fs.append_blocks
    assert restored.reserved_meta_blocks == fs.reserved_meta_blocks


def test_restored_fs_is_fully_usable():
    fs = _populate(_fs())
    restored = image.deserialize(image.serialize(fs))
    # allocation continues without clobbering existing blocks
    inode = restored.create("/post-restore")
    extent = restored.append_extent(inode, 4)
    for other in restored.inodes.values():
        if other is inode:
            continue
        for existing in other.extents:
            overlap = not (
                extent.start_block + extent.block_count
                <= existing.start_block
                or existing.start_block + existing.block_count
                <= extent.start_block
            )
            assert not overlap
    restored.unlink("/etc/shadow")
    assert restored.stat("/etc/passwd")[2] == 1


def test_region_save_and_load():
    region = bytearray(512 * 1024)

    def region_write(offset, data):
        region[offset : offset + len(data)] = data

    def region_read(offset, count):
        return bytes(region[offset : offset + count])

    fs = _populate(_fs())
    size = image.save_to_region(fs, region_write)
    assert 0 < size <= image.META_BLOCKS * fs.sb.block_size
    restored = image.load_from_region(region_read, fs.sb.block_size)
    assert _structure(restored) == _structure(fs)


def test_data_blocks_never_land_in_metadata_area():
    fs = _fs()
    inode = fs.create("/f")
    extent = fs.append_extent(inode, 16)
    assert extent.start_block >= image.META_BLOCKS


def test_bad_images_rejected():
    with pytest.raises(FsError, match="magic"):
        image.deserialize(b"NOTANFS\x00" + bytes(64))
    fs = _fs()
    good = bytearray(image.serialize(fs))
    good[8:16] = (99).to_bytes(8, "little")  # version
    with pytest.raises(FsError, match="version"):
        image.deserialize(bytes(good))


def test_double_claimed_block_detected():
    fs = _fs()
    a = fs.create("/a")
    fs.append_extent(a, 4)
    data = bytearray(image.serialize(fs))
    # craft a second inode claiming the same blocks by duplicating the
    # image's inode section is fiddly; instead corrupt via the public
    # API: two inodes sharing an extent
    from repro.m3.services.m3fs.extents import Extent

    b = fs.create("/b")
    b.extents.append(Extent(a.extents[0].start_block, 2))
    with pytest.raises(FsError, match="claimed twice"):
        image.deserialize(image.serialize(fs))


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    operations=st.lists(
        st.tuples(
            st.sampled_from(["create", "mkdir", "append", "truncate",
                             "unlink", "link"]),
            st.integers(min_value=0, max_value=9),
            st.integers(min_value=1, max_value=12),
        ),
        max_size=30,
    )
)
def test_roundtrip_after_arbitrary_operations(operations):
    fs = _fs()
    files = []
    for op, index, amount in operations:
        try:
            if op == "create":
                files.append(f"/f{len(files)}")
                fs.create(files[-1])
            elif op == "mkdir":
                fs.mkdir(f"/d{index}")
            elif op == "append" and files:
                fs.append_extent(fs.resolve(files[index % len(files)]),
                                 amount)
            elif op == "truncate" and files:
                inode = fs.resolve(files[index % len(files)])
                fs.truncate(inode, min(amount * 512, inode.size +
                                       sum(e.block_count for e in
                                           inode.extents) * 512))
            elif op == "unlink" and files:
                fs.unlink(files.pop(index % len(files)))
            elif op == "link" and files:
                fs.link(files[index % len(files)], f"/l{index}{amount}")
        except FsError:
            pass  # some random ops are invalid; fine
    restored = image.deserialize(image.serialize(fs))
    assert _structure(restored) == _structure(fs)
    assert restored.block_bitmap.used == fs.block_bitmap.used


def test_end_to_end_persistence_through_the_service():
    """Apps write files; the service syncs; the *DRAM bytes alone*
    (metadata image + data blocks) reconstruct the filesystem."""
    from repro.m3.lib.file import OpenFlags
    from repro.m3.system import M3System

    system = M3System(pe_count=5).boot(
        fs_kwargs={"persist": True, "append_blocks": 8}
    )

    def app(env):
        yield from env.vfs.mkdir("/var")
        f = yield from env.vfs.open("/var/log",
                                    OpenFlags.W | OpenFlags.CREATE)
        yield from f.write(b"persistent line one\n" * 50)
        yield from f.close()
        client = env.vfs.mounts[0][1]
        size = yield from client.request("sync")
        return size

    image_size = system.run_app(app)
    assert image_size > 0

    # White-box: read the region straight out of the DRAM model.
    server = system.fs_server
    region_cap = server.vpe.captable.get(server.region.selector)
    base = region_cap.obj.address
    dram = system.platform.dram.memory

    restored = image.load_from_region(
        lambda offset, count: dram.read(base + offset, count),
        server.fs.sb.block_size,
    )
    assert restored.stat("/var/log")[1] == 20 * 50
    inode = restored.resolve("/var/log")
    offset, _length = restored.extent_region(inode.extents[0])
    assert dram.read(base + offset, 19) == b"persistent line one"
