"""Service and session machinery, plus end-to-end isolation properties."""

import pytest

from repro.dtu import NoPermission
from repro.dtu.registers import EndpointRegisters
from repro.m3.kernel import syscalls
from repro.m3.kernel.kernel import SyscallError


def test_open_session_with_unknown_service_fails(system):
    def app(env):
        try:
            yield from env.syscall(syscalls.OPEN_SESSION, "nosuchservice")
        except SyscallError as exc:
            return str(exc)

    assert "no service" in system.run_app(app)


def test_sessions_are_isolated_per_client(fs_system):
    """Two clients get distinct session labels; fds do not leak across."""
    from repro.m3.lib.file import OpenFlags
    from repro.m3.lib.m3fs_client import M3fsClient

    def client_a(env):
        client = yield from M3fsClient.connect(env)
        f = yield from client.open("/a", OpenFlags.W | OpenFlags.CREATE)
        yield from f.write(b"a data")
        yield from f.close()
        return f.fd

    def client_b(env):
        client = yield from M3fsClient.connect(env)
        # fd numbering starts fresh: first open gets fd 0 in this session
        f = yield from client.open("/b", OpenFlags.W | OpenFlags.CREATE)
        fd = f.fd
        yield from f.close()
        return fd

    fd_a = fs_system.run_app(client_a, name="a")
    fd_b = fs_system.run_app(client_b, name="b")
    assert fd_a == 0 and fd_b == 0  # per-session descriptor spaces


def test_service_registration_is_unique(fs_system):
    from repro.m3.lib.gate import RecvGate

    def impostor(env):
        rgate = yield from RecvGate.create(env)
        try:
            yield from env.syscall(syscalls.CREATE_SRV, "m3fs", rgate.selector)
        except SyscallError as exc:
            return str(exc)

    assert "already registered" in fs_system.run_app(impostor)


def test_srv_delegate_requires_service_capability(fs_system):
    """A regular client cannot use the service-delegation syscall."""
    from repro.dtu.registers import MemoryPerm
    from repro.m3.lib.gate import MemGate

    def attacker(env):
        gate = yield from MemGate.create(env, 4096, MemoryPerm.RW.value)
        try:
            yield from env.syscall(
                syscalls.SRV_DELEGATE, gate.selector, 1, gate.selector,
                0, 64, MemoryPerm.RW.value,
            )
        except SyscallError as exc:
            return str(exc)

    result = fs_system.run_app(attacker, name="attacker")
    assert "service" in result or "is mem" in result


def test_read_only_open_gets_read_only_extents(fs_system):
    """m3fs delegates READ-only capabilities for read-only opens; the
    DTU then denies writes at the hardware level."""
    from repro.m3.lib.file import OpenFlags

    def app(env):
        f = yield from env.vfs.open("/ro", OpenFlags.W | OpenFlags.CREATE)
        yield from f.write(b"protect me")
        yield from f.close()
        g = yield from env.vfs.open("/ro", OpenFlags.R)
        yield from g.read(1)  # pulls the extent capability
        extent = g._extents[0]
        try:
            yield from extent.gate.write(0, b"HACKED")
        except NoPermission as exc:
            return str(exc)

    assert "WRITE" in fs_system.run_app(app) or \
        "perm" in fs_system.run_app(app).lower()


def test_application_dtus_are_downgraded_after_boot(system):
    """NoC-level isolation: after boot, only the kernel PE is privileged."""
    for pe in system.platform.pes:
        if pe.node == system.kernel.node:
            assert pe.dtu.privileged
        else:
            assert not pe.dtu.privileged


def test_app_cannot_configure_own_endpoints(system):
    def attacker(env):
        try:
            env.dtu.configure_local(
                "configure", 3,
                EndpointRegisters.receive_config(0, 64, 4),
            )
        except NoPermission as exc:
            return str(exc)
        yield 0

    assert "unprivileged" in system.run_app(attacker)


def test_app_cannot_reconfigure_other_pes(system):
    """An application's forged config packet is refused by the target
    DTU because the source DTU is unprivileged."""

    def attacker(env):
        victim_node = env.pe.node + 1
        try:
            yield from env.dtu.configure_remote(victim_node, "upgrade")
        except NoPermission as exc:
            return str(exc)

    result = system.run_app(attacker)
    assert "not privileged" in result


def test_apps_cannot_touch_dram_without_a_capability(system):
    """No memory endpoint, no DRAM access — the DTU is the only path."""

    def attacker(env):
        try:
            yield from env.dtu.read_memory(5, 0, 64)
        except NoPermission as exc:
            return str(exc)

    assert "not a memory endpoint" in system.run_app(attacker)
