"""VPE migration (Section 4.3: "we plan to allow the migration of
VPEs ... because it requires the same mechanism" as context switching)."""

import pytest

from repro.m3.kernel import syscalls
from repro.m3.kernel.kernel import SyscallError
from repro.m3.lib.vpe import VPE
from repro.m3.system import M3System


def _hog(env, cycles):
    yield env.compute(cycles)
    return "hog-done"


def test_explicit_migration_to_freed_pe():
    """A queued VPE is moved to a PE that became free; it runs there
    without the parent ever yielding its own PE."""
    system = M3System(pe_count=3, multiplexing=True).boot(with_fs=False)
    hog_vpe = system.spawn(_hog, 10_000, name="hog")  # occupies PE 2

    def child(env):
        yield env.compute(100)
        return env.pe.node

    def parent(env):
        vpe = yield from VPE.create(env, "child")  # queued: no free PE
        yield from vpe.run(child)
        yield env.compute(50_000)  # outlive the hog, never yield
        new_node = yield from env.syscall(syscalls.VPE_MIGRATE, vpe.selector)
        ran_on = yield from vpe.wait()
        return new_node, ran_on

    new_node, ran_on = system.run_app(parent, name="parent")
    assert new_node == ran_on == hog_vpe.pe.node
    assert system.wait(hog_vpe) == "hog-done"


def test_migrating_running_vpe_fails():
    system = M3System(pe_count=3, multiplexing=True).boot(with_fs=False)

    def child(env):
        yield env.compute(100_000)
        return ()

    def parent(env):
        vpe = yield from VPE.create(env, "child")  # dedicated PE (free)
        yield from vpe.run(child)
        try:
            yield from env.syscall(syscalls.VPE_MIGRATE, vpe.selector)
        except SyscallError as exc:
            return str(exc)

    assert "running" in system.run_app(parent)


def test_migration_fails_without_free_pe():
    system = M3System(pe_count=2, multiplexing=True).boot(with_fs=False)

    def child(env):
        yield env.compute(100)
        return ()

    def parent(env):
        vpe = yield from VPE.create(env, "child")  # queued on our PE
        yield from vpe.run(child)
        try:
            yield from env.syscall(syscalls.VPE_MIGRATE, vpe.selector)
        except SyscallError as exc:
            return str(exc)

    assert "no free PE" in system.run_app(parent)


def test_auto_rebalance_spreads_queued_vpes():
    """Load balancing (Section 1.3): when the hog's PE frees up, the
    queued sibling migrates there and both children run in parallel."""
    system = M3System(
        pe_count=3, multiplexing=True, auto_rebalance=True
    ).boot(with_fs=False)
    system.spawn(_hog, 5_000, name="hog")  # PE 2, exits quickly

    def child(env, tag):
        yield env.compute(30_000)
        return (tag, env.pe.node)

    def parent(env):
        first = yield from VPE.create(env, "a")
        yield from first.run(child, "a")
        second = yield from VPE.create(env, "b")
        yield from second.run(child, "b")
        result_a = yield from first.wait_yield()
        result_b = yield from second.wait_yield()
        return result_a, result_b

    (tag_a, node_a), (tag_b, node_b) = system.run_app(parent, name="parent")
    assert {tag_a, tag_b} == {"a", "b"}
    assert node_a != node_b  # the rebalancer spread them across PEs


def test_migrated_vpe_keeps_its_saved_state():
    """A *suspended* (yielded) VPE migrates and resumes with its SPM
    image intact on the new PE."""
    system = M3System(pe_count=4, multiplexing=True).boot(with_fs=False)
    marker = b"state that must migrate"

    def inner(env):
        yield env.compute(60_000)
        return ()

    def yielder(env):
        address = env.alloc_buffer(len(marker))
        env.pe.spm_data.write(address, marker)
        child = yield from VPE.create(env, "inner")
        yield from child.run(inner)
        yield from child.wait_yield()
        return env.pe.node, env.pe.spm_data.read(address, len(marker))

    # Fill all PEs so the yielder's child lands on the yielder's PE.
    hog_a = system.spawn(_hog, 10**9, name="hog-a")
    hog_b = system.spawn(_hog, 10**9, name="hog-b")
    yielder_vpe = system.spawn(yielder, name="yielder")
    system.sim.run(until=30_000)  # past the switch-out
    # While the yielder is switched out, free a PE and migrate it there.
    kernel = system.kernel
    target_node_holder = {}

    def boot_migration():
        victim = kernel.vpes[yielder_vpe.id]
        assert not victim.resident
        hog_a_proc = [p for v, p in system._app_processes if v.name == "hog-a"]
        hog_a_proc[0].interrupt("make-room")
        kernel.vpe_exited(kernel.vpes[hog_a.id], None)
        target = system.platform.find_free_pe()
        kernel.ctxsw.migrate(victim, target)
        target_node_holder["node"] = target.node
        return ()
        yield  # pragma: no cover

    system.sim.run_process(boot_migration(), "migrate")
    final_node, data = system.wait(yielder_vpe)
    assert final_node == target_node_holder["node"]
    assert data == marker
