"""The fault-injection framework: seeded rules, determinism, recording."""

import pytest

from repro.faults import FaultPlan
from repro.hw import Platform
from repro.noc.packet import Packet
from repro.sim.ledger import Tag
from tests.dtu.conftest import configure_channel


@pytest.fixture
def platform():
    return Platform.build(pe_count=4, mesh_width=3, mesh_height=2)


def _run_message(platform, count=1):
    """Send ``count`` messages PE0 -> PE1; return the receiver's DTU."""
    sender, receiver = platform.pe(0).dtu, platform.pe(1).dtu
    configure_channel(sender, receiver, credits=count + 1, slot_count=8)

    def tx():
        for i in range(count):
            yield sender.send(0, payload=("msg", i), length=16)

    platform.pe(0).run(tx(), "tx")
    platform.sim.run()
    return receiver


def test_drop_all_loses_every_message(platform):
    plan = FaultPlan(seed=1).drop(1.0, kinds=("message",))
    plan.install(platform)
    receiver = _run_message(platform, count=3)
    assert receiver.fetch_message(1) is None
    assert platform.network.packets_lost == 3
    assert len(plan.events) == 3
    assert all(record.action == "drop" for record in plan.events)


def test_drop_rate_zero_never_fires(platform):
    FaultPlan(seed=1).drop(0.0).install(platform)
    receiver = _run_message(platform, count=3)
    assert platform.network.packets_lost == 0
    assert receiver.fetch_message(1) is not None


def test_corrupt_discarded_by_receiver_crc(platform):
    FaultPlan(seed=1).corrupt(1.0, kinds=("message",)).install(platform)
    receiver = _run_message(platform)
    # The link-level CRC catches the corruption; the message is dropped.
    assert receiver.fetch_message(1) is None
    assert receiver.crc_drops == 1
    assert platform.network.packets_corrupted == 1


def test_delay_postpones_delivery(platform):
    plan = FaultPlan(seed=1).delay(1.0, cycles=(500, 500), kinds=("message",))
    plan.install(platform)
    receiver = _run_message(platform)
    fetched = receiver.fetch_message(1)
    assert fetched is not None
    assert platform.sim.now >= 500
    assert platform.network.packets_delayed == 1
    # Extra fault latency is charged to the ledger's fault tag.
    assert platform.sim.ledger.total(Tag.FAULT) >= 500


def test_filters_compose_source_destination_kind(platform):
    plan = (
        FaultPlan(seed=1)
        .drop(1.0, kinds=("message",), source=3)  # wrong source: no match
        .drop(1.0, kinds=("mem_read",))  # wrong kind: no match
    )
    plan.install(platform)
    receiver = _run_message(platform)
    assert receiver.fetch_message(1) is not None
    assert plan.events == []


def test_window_arms_and_disarms_rule(platform):
    FaultPlan(seed=1).drop(1.0, window=(10_000, 20_000)).install(platform)
    receiver = _run_message(platform)  # runs at cycle ~0: outside window
    assert receiver.fetch_message(1) is not None
    assert platform.network.packets_lost == 0


def test_same_seed_same_fault_schedule():
    def injected(seed):
        platform = Platform.build(pe_count=4, mesh_width=3, mesh_height=2)
        plan = FaultPlan(seed).drop(0.3, kinds=("message",))
        plan.install(platform)
        _run_message(platform, count=20)
        # detail embeds the globally-unique packet id; the schedule
        # itself is (cycle, action).
        return [(r.cycle, r.action) for r in plan.events]

    assert injected(7) == injected(7)
    assert injected(7) != injected(8)  # and the seed actually matters


def test_kill_pe_halts_core_but_not_dtu(platform):
    plan = FaultPlan(seed=1).kill_pe(node=1, at=100)
    plan.install(platform)
    pe = platform.pe(1)
    beats = []

    def victim():
        while True:
            yield 30
            beats.append(platform.sim.now)

    pe.run(victim(), "victim")
    platform.sim.run(until=1_000)
    assert pe.failed
    assert not pe.core_alive()
    assert all(beat <= 100 + 30 for beat in beats)
    # The DTU survives and still answers privileged probes.
    assert pe.dtu._apply_config("probe", ()) == "halted"
    assert any(record.action == "kill" for record in plan.events)


def test_stall_holds_packets_until_window_ends(platform):
    FaultPlan(seed=1).stall_pe(node=1, at=0, duration=2_000).install(platform)
    receiver = _run_message(platform)
    fetched = receiver.fetch_message(1)
    assert fetched is not None
    assert platform.sim.now >= 2_000  # held until the stall window closed


def test_double_install_rejected(platform):
    FaultPlan(seed=1).install(platform)
    with pytest.raises(RuntimeError):
        FaultPlan(seed=2).install(platform)


def test_install_on_bare_network(platform):
    plan = FaultPlan(seed=1).drop(1.0)
    plan.install(platform.network)
    _run_message(platform)
    assert platform.network.packets_lost >= 1


def test_kill_on_bare_network_rejected(platform):
    with pytest.raises(ValueError):
        FaultPlan(seed=1).kill_pe(node=1, at=10).install(platform.network)


def test_unknown_packet_kind_rejected_at_construction():
    with pytest.raises(ValueError, match="unknown packet kind"):
        FaultPlan(seed=1).drop(1.0, kinds=("mesage",))  # typo
    with pytest.raises(ValueError, match="valid kinds are"):
        FaultPlan(seed=1).corrupt(0.5, kinds=("message", "bogus"))


def test_bad_rates_windows_and_cycles_rejected():
    with pytest.raises(ValueError, match="probability"):
        FaultPlan(seed=1).drop(1.5)
    with pytest.raises(ValueError, match="window"):
        FaultPlan(seed=1).drop(1.0, window=(-10, 100))
    with pytest.raises(ValueError, match="window"):
        FaultPlan(seed=1).drop(1.0, window=(200, 100))
    with pytest.raises(ValueError, match="delay bounds"):
        FaultPlan(seed=1).delay(1.0, cycles=(100, 50))
    with pytest.raises(ValueError, match="kill cycle"):
        FaultPlan(seed=1).kill_pe(node=1, at=-5)
    with pytest.raises(ValueError, match="stall cycle"):
        FaultPlan(seed=1).stall_pe(node=1, at=-5, duration=10)
    with pytest.raises(ValueError, match="duration"):
        FaultPlan(seed=1).stall_pe(node=1, at=0, duration=0)
    with pytest.raises(ValueError, match="source node"):
        FaultPlan(seed=1).drop(1.0, source=-1)
    with pytest.raises(ValueError, match="destination node"):
        FaultPlan(seed=1).drop(1.0, destination=-2)
    with pytest.raises(ValueError, match="link"):
        FaultPlan(seed=1).drop(1.0, link=(0, 1, 2))


def test_nonexistent_targets_rejected_at_install(platform):
    # The platform has 4 PE nodes (plus the DRAM node); node 99 exists
    # nowhere, and (0, 2) is not a mesh link (two hops apart).
    with pytest.raises(ValueError):
        FaultPlan(seed=1).kill_pe(node=99, at=10).install(platform)
    with pytest.raises(ValueError):
        FaultPlan(seed=1).drop(1.0, source=99).install(platform)
    with pytest.raises(ValueError):
        FaultPlan(seed=1).drop(1.0, destination=99).install(platform)
    with pytest.raises(ValueError):
        FaultPlan(seed=1).drop(1.0, link=(0, 2)).install(platform)
    # A failed install must not leave the plan half-attached: the
    # network stays plan-free and a valid plan can still be installed.
    assert platform.network.fault_plan is None
    FaultPlan(seed=1).drop(0.0).install(platform)


def test_no_plan_is_default_and_free(platform):
    assert platform.network.fault_plan is None
    receiver = _run_message(platform)
    assert receiver.fetch_message(1) is not None
    assert platform.network.packets_lost == 0
