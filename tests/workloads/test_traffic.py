"""The traffic workload: schedules, the serving stack, faults, tails."""

import pytest

from repro.faults import FaultPlan
from repro.obs import causal
from repro.workloads import traffic
from repro.workloads.traffic import TrafficProfile, build_schedule, run_profile

SMALL = TrafficProfile(requests=48, clients=64)


def test_schedule_is_a_pure_function_of_the_profile():
    first, second = build_schedule(SMALL), build_schedule(SMALL)
    assert first == second
    assert len(first) == SMALL.requests
    # strictly ordered ids, non-decreasing arrival cycles
    assert [a.req_id for a in first] == list(range(1, SMALL.requests + 1))
    assert all(later.at >= earlier.at
               for earlier, later in zip(first, first[1:]))
    # a different seed moves the arrivals
    assert build_schedule(TrafficProfile(
        requests=48, clients=64, seed=7)) != first


def test_schedule_shapes_and_bounds():
    arrivals = build_schedule(TrafficProfile(requests=200, clients=32))
    sizes = [a.value_len for a in arrivals if a.op == traffic.OP_PUT]
    assert sizes, "no puts in a 30% put mix?"
    assert all(16 <= size <= 384 for size in sizes)
    assert max(sizes) > 2 * min(sizes), "no heavy tail in sizes"
    assert all(0 <= a.client < 32 and 0 <= a.key_id < 64 for a in arrivals)

    bursty = build_schedule(TrafficProfile(
        requests=64, arrival="bursty", burst=8))
    # bursts: runs of arrivals spaced exactly burst_spacing apart
    gaps = [later.at - earlier.at
            for earlier, later in zip(bursty, bursty[1:])]
    assert gaps.count(TrafficProfile().burst_spacing) >= 32


def test_profile_validation():
    with pytest.raises(ValueError):
        TrafficProfile(arrival="lumpy")
    with pytest.raises(ValueError):
        TrafficProfile(keys=1000)
    with pytest.raises(ValueError):
        TrafficProfile(size_floor=0)


def test_load_point_completes_and_measures(small_point):
    result = small_point
    assert result.sent == result.completed == SMALL.requests
    assert result.drops == 0 and result.kv_errors == 0
    assert result.histogram.count == SMALL.requests
    assert all(latency > 0 for latency in result.latencies.values())
    # both gateways served, both replicas were routed to and served
    assert all(served > 0 for served in result.served_by)
    assert sorted(result.route_counts) == ["kv0", "kv1"]
    assert all(count > 0 for count in result.replica_requests.values())


def test_load_point_is_deterministic(small_point):
    again = run_profile(SMALL)
    assert again.latencies == small_point.latencies
    assert again.served_by == small_point.served_by
    assert again.replica_requests == small_point.replica_requests


@pytest.fixture(scope="module")
def small_point():
    return run_profile(SMALL)


def test_observed_run_traces_the_tail():
    result = run_profile(SMALL, observe=True)
    # observability must not change the measured timing
    assert result.latencies == run_profile(SMALL).latencies
    req_id, _latency = max(result.latencies.items(),
                           key=lambda item: (item[1], -item[0]))
    request = causal.find_request(
        result.system.sim.obs, f"req{req_id}", category="traffic"
    )
    segments = causal.critical_path(request)
    breakdown = causal.component_breakdown(segments)
    assert sum(segment.cycles for segment in segments) == \
        request.total_cycles
    assert breakdown.get("service", 0) > 0, "kv handling missing"
    assert breakdown.get("noc-transfer", 0) > 0


def test_mid_load_fault_plan_is_survived():
    plan = FaultPlan(SMALL.seed).drop(0.02, window=(100_000, 200_000))
    result = run_profile(SMALL, fault_plan=plan)
    assert result.completed == SMALL.requests, "loss must be retransmitted"
    assert result.fault_events > 0
    assert result.noc_packets_lost == result.fault_events
    assert result.dtu_retransmits > 0
