"""Workload corpora: the paper's stated parameters must hold exactly."""

from repro import params
from repro.workloads.data import (
    TAR_RECORD_BYTES,
    deterministic_bytes,
    find_tree_layout,
    tar_archive_bytes,
    tar_file_set,
    tar_source_files,
)


def test_deterministic_bytes_reproducible_and_distinct():
    assert deterministic_bytes("a", 100) == deterministic_bytes("a", 100)
    assert deterministic_bytes("a", 100) != deterministic_bytes("b", 100)
    assert len(deterministic_bytes("x", 12345)) == 12345
    assert deterministic_bytes("x", 0) == b""


def test_tar_corpus_matches_paper():
    """"files between 60 and 500 KiB and 1.2 MiB in total"."""
    sizes = tar_file_set()
    assert sum(sizes.values()) == params.TAR_TOTAL_BYTES
    for size in sizes.values():
        assert params.TAR_MIN_FILE_BYTES <= size <= params.TAR_MAX_FILE_BYTES


def test_tar_archive_layout():
    archive = tar_archive_bytes()
    sources = tar_source_files()
    expected = sum(
        TAR_RECORD_BYTES + -(-len(c) // TAR_RECORD_BYTES) * TAR_RECORD_BYTES
        for c in sources.values()
    ) + 2 * TAR_RECORD_BYTES
    assert len(archive) == expected
    # First member's content sits right after its header.
    first = next(iter(sources.values()))
    assert archive[TAR_RECORD_BYTES : TAR_RECORD_BYTES + 64] == first[:64]


def test_find_tree_has_40_items():
    """"a directory tree of 40 items"."""
    directories, files = find_tree_layout()
    assert len(directories) + len(files) == 40
    for path in files:
        assert any(path.startswith(d + "/") for d in directories)
