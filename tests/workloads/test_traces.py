"""Trace generation and replay on both OS models."""

import pytest

from repro import params
from repro.linuxsim.machine import LinuxMachine
from repro.m3.system import M3System
from repro.workloads.data import tar_source_files
from repro.workloads.trace import LinuxReplayer, M3Replayer
from repro.workloads.tracegen import (
    TRACE_BENCHMARKS,
    make_find_trace,
    make_sqlite_trace,
    make_tar_trace,
    make_untar_trace,
)


def _replay_on_linux(setup_files, trace):
    machine = LinuxMachine()
    for path, content in setup_files.items():
        directory = ""
        for part in machine.fs.split(path)[:-1]:
            directory = f"{directory}/{part}"
            if not machine.fs.exists(directory):
                machine.fs.mkdir(directory)
        machine.fs.create(path).data.extend(content)

    def program(lx):
        yield from LinuxReplayer(lx).replay(trace)
        return lx.sim.now

    machine.run_program(program)
    return machine


def _replay_on_m3(setup_files, trace):
    system = M3System(pe_count=5).boot()
    if setup_files:
        system.fs_preload(setup_files)

    def app(env):
        yield from M3Replayer(env).replay(trace)
        return env.sim.now

    system.run_app(app)
    return system


def test_untar_extracts_all_members_on_linux():
    setup, trace = make_untar_trace()
    machine = _replay_on_linux(setup, trace)
    for path, content in tar_source_files().items():
        name = path.rsplit("/", 1)[-1]
        node = machine.fs.lookup(f"/out/{name}")
        assert len(node.data) == len(content)


def test_untar_extracts_all_members_on_m3():
    setup, trace = make_untar_trace()
    system = _replay_on_m3(setup, trace)
    fs = system.fs_server.fs
    for path, content in tar_source_files().items():
        name = path.rsplit("/", 1)[-1]
        assert fs.stat(f"/out/{name}")[1] == len(content)


def test_untar_round_trips_member_bytes_on_m3():
    """Not just sizes: the extracted bytes equal the archive members."""
    setup, trace = make_untar_trace()
    system = _replay_on_m3(setup, trace)
    first_path, first_content = next(iter(tar_source_files().items()))
    name = first_path.rsplit("/", 1)[-1]
    assert system.fs_read_back(f"/out/{name}") == first_content


def test_tar_produces_archive_of_expected_size():
    setup, trace = make_tar_trace()
    machine = _replay_on_linux(setup, trace)
    from repro.workloads.data import tar_archive_bytes

    archive = machine.fs.lookup("/arch.tar")
    assert len(archive.data) == len(tar_archive_bytes())


def test_find_trace_touches_all_items():
    _setup, trace = make_find_trace()
    stats = [op for op in trace if op.op == "stat"]
    readdirs = [op for op in trace if op.op == "readdir"]
    assert len(stats) == 41  # /tree + 4 dirs + 36 files
    assert len(readdirs) == 5


def test_sqlite_trace_matches_paper_shape():
    _setup, trace = make_sqlite_trace()
    opens = [op for op in trace if op.op == "open"]
    waits = [op for op in trace if op.op == "wait"]
    assert len(opens) == 1 + params.SQLITE_INSERTS  # db + one journal each
    # create + 8 inserts + select
    assert len(waits) == 2 + params.SQLITE_INSERTS
    total_compute = sum(op.args[0] for op in waits)
    assert total_compute == (
        params.SQLITE_CREATE_CYCLES
        + params.SQLITE_INSERTS * params.SQLITE_INSERT_CYCLES
        + params.SQLITE_SELECT_CYCLES
    )


def test_prefix_rewrites_all_paths():
    for name, maker in TRACE_BENCHMARKS.items():
        setup, trace = maker("/p7")
        for path in setup:
            assert path.startswith("/p7/"), (name, path)
        for op in trace:
            if op.op in ("open", "stat", "mkdir", "unlink", "readdir"):
                assert op.args[0].startswith("/p7"), (name, op)


def test_both_replayers_execute_identical_op_sequences():
    """The same trace costs the same *App* cycles on both systems —
    the paper's equal-computation assumption."""
    setup, trace = make_sqlite_trace()

    machine = _replay_on_linux(setup, trace)
    lx_app = machine.sim.ledger.total("app")

    system = _replay_on_m3(setup, trace)
    m3_app = system.sim.ledger.total("app")
    assert lx_app == m3_app > 0


def test_replayer_rejects_unknown_op():
    from repro.workloads.trace import TraceOp

    bogus = [TraceOp("teleport", ("x",))]
    machine = LinuxMachine()

    def program(lx):
        yield from LinuxReplayer(lx).replay(bogus)

    with pytest.raises(ValueError, match="unknown trace op"):
        machine.run_program(program)


def test_cat_tr_serialized_variant_matches_parallel():
    """Figure 5's fairness: cat+tr is parent-bound, so the one-slot
    (strictly alternating) pipe and the parallel pipe cost the same
    within a few percent — and both produce correct output."""
    from repro.m3.system import M3System
    from repro.workloads.cat_tr import (
        INPUT_PATH,
        OUTPUT_PATH,
        input_bytes,
        m3_cat_tr,
    )

    walls = {}
    for serialize in (True, False):
        system = M3System(pe_count=6).boot()
        system.fs_preload({INPUT_PATH: input_bytes()})
        wall, _ledger = system.run_app(
            m3_cat_tr, False, "", serialize, name="cat+tr"
        )
        walls[serialize] = wall
        produced = system.fs_read_back(OUTPUT_PATH)
        assert produced == input_bytes().replace(b"a", b"b")
    assert abs(walls[True] - walls[False]) < 0.05 * walls[False]
