"""Reliable DTU delivery: acks, retransmits, dedup, credit reconciliation."""

import pytest

from repro import params
from repro.dtu.dtu import TransferTimeout
from repro.dtu.registers import EndpointRegisters
from repro.faults import FaultPlan
from repro.hw import Platform
from tests.dtu.conftest import configure_channel, configure_memory_ep


@pytest.fixture
def platform():
    p = Platform.build(pe_count=4, mesh_width=3, mesh_height=2)
    for pe in p.pes:
        pe.dtu.enable_reliability()
    return p


def _channel(platform, **kwargs):
    sender, receiver = platform.pe(0).dtu, platform.pe(1).dtu
    configure_channel(sender, receiver, **kwargs)
    return sender, receiver


def test_reliable_send_is_acked_not_retransmitted(platform):
    sender, receiver = _channel(platform)

    def tx():
        yield sender.send(0, payload=("hi",), length=8)

    platform.pe(0).run(tx(), "tx")
    platform.sim.run()
    slot_msg = receiver.fetch_message(1)
    assert slot_msg is not None
    assert slot_msg[1].header.seq >= 0
    assert slot_msg[1].header.crc != 0
    assert receiver.acks_sent == 1
    assert sender.retransmits == 0
    assert not sender._retx  # ack cleared the retransmit entry


def test_lost_message_is_retransmitted_and_delivered(platform):
    # Drop exactly the first matching message packet, nothing else.
    FaultPlan(seed=1).drop(1.0, kinds=("message",),
                           window=(0, 30)).install(platform)
    sender, receiver = _channel(platform)

    def tx():
        yield sender.send(0, payload=("persist",), length=8)

    platform.pe(0).run(tx(), "tx")
    platform.sim.run()
    assert platform.network.packets_lost >= 1
    assert sender.retransmits >= 1
    fetched = receiver.fetch_message(1)
    assert fetched is not None and fetched[1].payload == ("persist",)


def test_lost_ack_triggers_dup_suppression(platform):
    # The message gets through; its ack is dropped once, so the sender
    # retransmits and the receiver must re-ack without re-delivering.
    FaultPlan(seed=1).drop(1.0, kinds=("msg_ack",),
                           window=(0, 30)).install(platform)
    sender, receiver = _channel(platform)

    def tx():
        yield sender.send(0, payload=("once",), length=8)

    platform.pe(0).run(tx(), "tx")
    platform.sim.run()
    assert sender.retransmits >= 1
    assert receiver.ringbuffer(1).duplicates >= 1
    # Delivered exactly once despite the retransmit.
    assert receiver.fetch_message(1) is not None
    assert receiver.fetch_message(1) is None


def test_duplicate_reply_cannot_double_refill_credits(platform):
    # Lose the reply's ack: the replier retransmits the reply, and the
    # duplicate must not refill the original sender's credits twice.
    FaultPlan(seed=1).drop(1.0, kinds=("msg_ack",), destination=1,
                           window=(0, 200)).install(platform)
    sender, receiver = _channel(platform, credits=4)
    sender.configure_local(
        "configure",
        2,
        EndpointRegisters.receive_config(buffer_addr=0, slot_size=128,
                                         slot_count=4),
    )

    def tx():
        yield sender.send(0, payload=("ping",), length=8, reply_ep=2)

    platform.pe(0).run(tx(), "tx")

    def rx():
        slot, _message = yield from receiver.wait_message(1)
        yield receiver.reply(1, slot, payload=("pong",), length=8)

    platform.pe(1).run(rx(), "rx")
    platform.sim.run()
    assert receiver.retransmits >= 1  # the reply was re-sent
    # One send spent one credit; exactly one refill came back.
    assert sender.eps[0].credits == 4


def test_give_up_reconciles_credit_and_fails_transfer(platform):
    FaultPlan(seed=1).drop(1.0, kinds=("message",)).install(platform)
    sender, _receiver = _channel(platform, credits=2)

    def tx():
        with pytest.raises(TransferTimeout):
            yield sender.send(0, payload=("doomed",), length=8)
        return sender.eps[0].credits

    proc = platform.pe(0).run(tx(), "tx")
    platform.sim.run()
    assert proc.done.ok
    # The credit spent on the doomed send was refunded.
    assert proc.done.value == 2
    assert sender.retransmits == params.DTU_RETX_MAX


def test_memory_transaction_survives_lost_response(platform):
    FaultPlan(seed=1).drop(1.0, kinds=("mem_resp",),
                           window=(0, 30)).install(platform)
    requester = platform.pe(0).dtu
    target = platform.pe(1)
    target.spm_data.write(0, b"payload-bytes")
    configure_memory_ep(requester, 2, target.node, 0, 4096)

    def reader():
        data = yield from requester.read_memory(2, 0, 13)
        return data

    proc = platform.pe(0).run(reader(), "reader")
    platform.sim.run()
    assert proc.done.ok
    assert proc.done.value == b"payload-bytes"
    assert requester.retransmits >= 1


def test_retx_timer_after_sender_wiped_is_harmless(platform):
    """The sender's VPE dies right after a (lost) send and the kernel
    wipes its DTU: the armed retransmit timer still fires, finds no
    entry, and must neither crash nor retransmit on behalf of the dead
    node."""
    FaultPlan(seed=1).drop(1.0, kinds=("message",)).install(platform)
    sender, receiver = _channel(platform)

    def tx():
        # Fire-and-forget: the wipe below kills this VPE's node, so
        # nobody is left to observe the completion event.
        sender.send(0, payload=("orphaned",), length=8)
        return ()
        yield  # pragma: no cover

    platform.pe(0).run(tx(), "tx")
    # Kernel-style quarantine before the first retransmit timer fires.
    platform.sim.schedule(
        params.DTU_RETX_TIMEOUT_CYCLES // 2,
        lambda _: sender._apply_config("wipe", ()),
    )
    platform.sim.run()
    assert sender.retransmits == 0
    assert sender._retx == {}
    assert receiver.fetch_message(1) is None


def test_ack_arriving_after_quarantine_is_ignored(platform):
    """The message is delivered, but its ack is delayed past the point
    where the kernel quarantines (wipes) the sender: the late ack finds
    no retransmit entry and is dropped without side effects."""
    FaultPlan(seed=1).delay(1.0, cycles=(2_000, 2_000),
                            kinds=("msg_ack",)).install(platform)
    sender, receiver = _channel(platform)

    def tx():
        sender.send(0, payload=("late-ack",), length=8)
        return ()
        yield  # pragma: no cover

    platform.pe(0).run(tx(), "tx")
    platform.sim.schedule(1_000, lambda _: sender._apply_config("wipe", ()))
    platform.sim.run()
    assert platform.sim.now >= 2_000  # the delayed ack did arrive
    assert sender._retx == {}
    assert all(ep.kind.name == "INVALID" for ep in sender.eps)
    # Delivery itself happened exactly once, before the quarantine.
    assert receiver.fetch_message(1) is not None
    assert receiver.fetch_message(1) is None


def test_retransmit_schedule_is_seed_deterministic():
    """Same seed, same lossy run: the retransmit/backoff schedule, the
    fault schedule, and the final cycle count are all bit-identical —
    and the seed actually matters."""

    def lossy_run(seed):
        platform = Platform.build(pe_count=4, mesh_width=3, mesh_height=2)
        for pe in platform.pes:
            pe.dtu.enable_reliability()
        plan = FaultPlan(seed).drop(0.4, kinds=("message",))
        plan.install(platform)
        sender, receiver = platform.pe(0).dtu, platform.pe(1).dtu
        configure_channel(sender, receiver, credits=12, slot_count=16)

        def tx():
            for i in range(10):
                yield sender.send(0, payload=("msg", i), length=16)

        platform.pe(0).run(tx(), "tx")
        platform.sim.run()
        received = []
        while True:
            fetched = receiver.fetch_message(1)
            if fetched is None:
                break
            received.append(fetched[1].payload)
        return (sender.retransmits, received,
                [(r.cycle, r.action) for r in plan.events],
                platform.sim.now)

    assert lossy_run(11) == lossy_run(11)
    assert lossy_run(11) != lossy_run(12)


def test_wait_message_timeout_raises(platform):
    _sender, receiver = _channel(platform)

    def rx():
        with pytest.raises(TransferTimeout):
            yield from receiver.wait_message(1, timeout=500)
        return platform.sim.now

    proc = platform.pe(1).run(rx(), "rx")
    platform.sim.run()
    assert proc.done.ok
    assert proc.done.value >= 500


def test_wipe_clears_endpoints_and_retx_state(platform):
    sender, receiver = _channel(platform)
    assert receiver.eps[1].kind.name == "RECEIVE"
    assert receiver._apply_config("wipe", ()) == "ok"
    assert all(ep.kind.name == "INVALID" for ep in receiver.eps)
    assert receiver._ringbufs == {}


def test_unreliable_default_has_no_seq_no_acks():
    platform = Platform.build(pe_count=4, mesh_width=3, mesh_height=2)
    sender, receiver = platform.pe(0).dtu, platform.pe(1).dtu
    configure_channel(sender, receiver)

    def tx():
        yield sender.send(0, payload=("plain",), length=8)

    platform.pe(0).run(tx(), "tx")
    platform.sim.run()
    slot_msg = receiver.fetch_message(1)
    assert slot_msg[1].header.seq == -1
    assert slot_msg[1].header.crc == 0
    assert receiver.acks_sent == 0
    assert sender._retx == {}
