"""DTU error paths must not mutate endpoint state.

A rejected operation (MissingCredits, NoPermission) models the hardware
refusing to start a transfer: no credit is consumed, no register
changes, no ringbuffer movement, no packet leaves the DTU.  Software can
therefore retry or report the error without resynchronising state.
"""

import dataclasses

import pytest

from repro.dtu.dtu import MissingCredits, NoPermission
from repro.dtu.registers import EndpointRegisters, MemoryPerm
from tests.dtu.conftest import configure_channel, configure_memory_ep


def _snapshot(dtu):
    """Everything software-visible about a DTU's endpoint state."""
    eps = tuple(dataclasses.asdict(ep) for ep in dtu.eps)
    rings = {
        index: (
            ring._write_pos,
            ring._read_pos,
            tuple(ring._slots),
            ring.delivered,
            ring.dropped,
            ring.duplicates,
        )
        for index, ring in dtu._ringbufs.items()
    }
    return eps, rings, dtu.messages_sent


@pytest.fixture
def wired(platform):
    sender, receiver = platform.pe(0).dtu, platform.pe(1).dtu
    configure_channel(sender, receiver, credits=2, slot_size=64)
    configure_memory_ep(sender, 2, platform.pe(2).node, 0, 1024,
                        perm=MemoryPerm.READ)
    return platform, sender, receiver


def _assert_unchanged(dtu, before, platform):
    assert _snapshot(dtu) == before
    assert platform.network.packets_sent == 0


def test_send_on_wrong_endpoint_kind_is_side_effect_free(wired):
    platform, sender, _receiver = wired
    before = _snapshot(sender)
    with pytest.raises(NoPermission):
        sender.send(1, payload=("x",), length=8)  # EP1 is unconfigured
    with pytest.raises(NoPermission):
        sender.send(2, payload=("x",), length=8)  # EP2 is a memory EP
    _assert_unchanged(sender, before, platform)


def test_oversized_message_is_side_effect_free(wired):
    platform, sender, _receiver = wired
    before = _snapshot(sender)
    with pytest.raises(NoPermission):
        sender.send(0, payload=("x",), length=4096)
    _assert_unchanged(sender, before, platform)
    assert sender.eps[0].credits == 2  # no credit was charged


def test_missing_credits_charges_nothing(wired):
    platform, sender, _receiver = wired
    sender.eps[0].credits = 0
    before = _snapshot(sender)
    with pytest.raises(MissingCredits):
        sender.send(0, payload=("x",), length=8)
    _assert_unchanged(sender, before, platform)
    assert sender.eps[0].credits == 0  # not driven negative either


def test_bad_reply_ep_rejected_before_credit_spend(wired):
    platform, sender, _receiver = wired
    before = _snapshot(sender)
    with pytest.raises(NoPermission):
        # EP2 is a memory endpoint, not a receive endpoint.
        sender.send(0, payload=("x",), length=8, reply_ep=2)
    _assert_unchanged(sender, before, platform)
    assert sender.eps[0].credits == 2


def test_reply_on_non_receive_ep_is_side_effect_free(wired):
    platform, sender, receiver = wired
    before = _snapshot(receiver)
    with pytest.raises(NoPermission):
        receiver.reply(0, 0, payload=("x",), length=8)
    _assert_unchanged(receiver, before, platform)


def test_reply_with_replies_disabled_keeps_slot_occupied(wired):
    platform, sender, receiver = wired

    def tx():
        yield sender.send(0, payload=("hello",), length=8)

    platform.pe(0).run(tx(), "tx")
    platform.sim.run()
    receiver.eps[1].replies_enabled = False
    fetched = receiver.fetch_message(1)
    assert fetched is not None
    before = _snapshot(receiver)
    sent_before = platform.network.packets_sent
    with pytest.raises(NoPermission):
        receiver.reply(1, fetched[0], payload=("pong",), length=8)
    assert _snapshot(receiver) == before
    assert platform.network.packets_sent == sent_before
    # The slot was NOT acked away by the failed reply.
    assert receiver.ringbuffer(1).occupied == 1


def test_memory_permission_and_bounds_are_side_effect_free(wired):
    platform, sender, _receiver = wired
    before = _snapshot(sender)
    with pytest.raises(NoPermission):
        next(sender.write_memory(2, 0, b"denied"))  # READ-only EP
    with pytest.raises(NoPermission):
        next(sender.read_memory(2, 1000, 100))  # out of bounds
    with pytest.raises(NoPermission):
        next(sender.read_memory(0, 0, 8))  # send EP, not memory
    _assert_unchanged(sender, before, platform)
    assert sender._pending == {}  # no transaction was opened


def test_invalid_ep_index_is_side_effect_free(wired):
    platform, sender, _receiver = wired
    before = _snapshot(sender)
    with pytest.raises(ValueError):
        sender.send(len(sender.eps), payload=("x",), length=8)
    _assert_unchanged(sender, before, platform)
