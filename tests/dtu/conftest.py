"""Shared fixtures: a small platform with helper wiring for DTU tests."""

import pytest

from repro.dtu.registers import EndpointRegisters, MemoryPerm
from repro.hw import Platform


@pytest.fixture
def platform():
    return Platform.build(pe_count=4, mesh_width=3, mesh_height=2)


def configure_channel(
    sender_dtu,
    receiver_dtu,
    send_ep=0,
    recv_ep=1,
    label=0xABCD,
    credits=4,
    slot_size=128,
    slot_count=4,
):
    """Wire a send EP at the sender to a receive EP at the receiver.

    Uses the boot-time privilege of the DTUs (all privileged until a
    kernel downgrades them) to write the registers locally, exactly how
    boot code would.
    """
    receiver_dtu.configure_local(
        "configure",
        recv_ep,
        EndpointRegisters.receive_config(
            buffer_addr=0, slot_size=slot_size, slot_count=slot_count
        ),
    )
    sender_dtu.configure_local(
        "configure",
        send_ep,
        EndpointRegisters.send_config(
            target_node=receiver_dtu.node,
            target_ep=recv_ep,
            label=label,
            credits=credits,
            msg_size=slot_size,
        ),
    )


def configure_memory_ep(dtu, ep, target_node, address, size, perm=MemoryPerm.RW):
    dtu.configure_local(
        "configure",
        ep,
        EndpointRegisters.memory_config(target_node, address, size, perm),
    )
