"""End-to-end message passing between two PEs' DTUs."""

import pytest

from repro.dtu import DtuError, MissingCredits, NoPermission
from tests.dtu.conftest import configure_channel


def test_send_delivers_message_with_label(platform):
    sender, receiver = platform.pe(0).dtu, platform.pe(1).dtu
    configure_channel(sender, receiver, label=0xBEEF)

    def sender_sw():
        yield sender.send(0, payload=("hello", 42), length=16)

    def receiver_sw():
        slot, message = yield from receiver.wait_message(1)
        receiver.ack_message(1, slot)
        return message

    platform.pe(0).run(sender_sw(), "tx")
    proc = platform.pe(1).run(receiver_sw(), "rx")
    platform.sim.run()
    message = proc.done.value
    assert message.payload == ("hello", 42)
    assert message.label == 0xBEEF  # receiver-chosen, unforgeable by sender


def test_send_consumes_credit_and_blocks_at_zero(platform):
    sender, receiver = platform.pe(0).dtu, platform.pe(1).dtu
    configure_channel(sender, receiver, credits=2)

    def sender_sw():
        yield sender.send(0, "a", 8)
        yield sender.send(0, "b", 8)
        with pytest.raises(MissingCredits):
            sender.send(0, "c", 8)

    platform.sim.run_process(sender_sw())
    assert sender.ep(0).credits == 0


def test_reply_refills_sender_credits(platform):
    sender, receiver = platform.pe(0).dtu, platform.pe(1).dtu
    configure_channel(sender, receiver, send_ep=0, recv_ep=1, credits=1)
    # A receive EP at the sender for replies.
    configure_channel(receiver, sender, send_ep=5, recv_ep=2)  # gives sender EP2

    def client():
        yield sender.send(0, "request", 8, reply_ep=2, reply_label=0x77)
        assert sender.ep(0).credits == 0
        slot, reply = yield from sender.wait_message(2)
        sender.ack_message(2, slot)
        return reply

    def server():
        slot, message = yield from receiver.wait_message(1)
        assert message.can_reply
        yield receiver.reply(1, slot, payload="response", length=8)

    platform.pe(1).run(server(), "server")
    proc = platform.pe(0).run(client(), "client")
    platform.sim.run()
    reply = proc.done.value
    assert reply.payload == "response"
    assert reply.label == 0x77  # reply label identifies the request
    assert sender.ep(0).credits == 1  # refilled by the reply


def test_reply_frees_the_slot(platform):
    sender, receiver = platform.pe(0).dtu, platform.pe(1).dtu
    configure_channel(sender, receiver, slot_count=1, credits=8)
    configure_channel(receiver, sender, send_ep=5, recv_ep=2)

    def client():
        for i in range(3):
            yield sender.send(0, i, 8, reply_ep=2)
            slot, reply = yield from sender.wait_message(2)
            sender.ack_message(2, slot)
            assert reply.payload == i * 10

    def server():
        for _ in range(3):
            slot, message = yield from receiver.wait_message(1)
            yield receiver.reply(1, slot, message.payload * 10, 8)

    platform.pe(1).run(server(), "server")
    platform.pe(0).run(client(), "client")
    platform.sim.run()
    assert receiver.ringbuffer(1).occupied == 0
    assert receiver.messages_dropped == 0


def test_message_to_unconfigured_ep_is_dropped(platform):
    sender, receiver = platform.pe(0).dtu, platform.pe(1).dtu
    configure_channel(sender, receiver)
    # Point the sender at an EP that is not configured as RECEIVE.
    sender.ep(0).target_ep = 7

    def sender_sw():
        yield sender.send(0, "lost", 8)

    platform.sim.run_process(sender_sw())
    platform.sim.run()
    assert receiver.messages_dropped == 1


def test_oversized_send_rejected(platform):
    sender, receiver = platform.pe(0).dtu, platform.pe(1).dtu
    configure_channel(sender, receiver, slot_size=64)
    with pytest.raises(NoPermission):
        sender.send(0, "x" * 100, length=100)


def test_send_on_non_send_ep_rejected(platform):
    dtu = platform.pe(0).dtu
    with pytest.raises(NoPermission):
        dtu.send(0, "x", 8)
    with pytest.raises(DtuError):
        dtu.reply(0, 0, "x", 8)


def test_ring_overflow_drops_when_credits_exceed_slots(platform):
    """"the receiver should not hand out more credits than buffer space
    is available, because messages are dropped if no space is left"."""
    sender, receiver = platform.pe(0).dtu, platform.pe(1).dtu
    configure_channel(sender, receiver, credits=4, slot_count=2)

    def sender_sw():
        for i in range(4):
            yield sender.send(0, i, 8)

    platform.sim.run_process(sender_sw())
    platform.sim.run()
    assert receiver.ringbuffer(1).occupied == 2
    assert receiver.messages_dropped == 2


def test_per_sender_fifo_order(platform):
    sender, receiver = platform.pe(0).dtu, platform.pe(1).dtu
    configure_channel(sender, receiver, credits=8, slot_count=8)

    def sender_sw():
        for i in range(5):
            yield sender.send(0, i, 8)

    received = []

    def receiver_sw():
        for _ in range(5):
            slot, message = yield from receiver.wait_message(1)
            received.append(message.payload)
            receiver.ack_message(1, slot)

    platform.pe(0).run(sender_sw(), "tx")
    platform.pe(1).run(receiver_sw(), "rx")
    platform.sim.run()
    assert received == [0, 1, 2, 3, 4]


def test_transfer_time_charged_to_xfer_tag(platform):
    sender, receiver = platform.pe(0).dtu, platform.pe(1).dtu
    configure_channel(sender, receiver)

    def sender_sw():
        yield sender.send(0, "x", 32)

    platform.sim.run_process(sender_sw())
    assert platform.sim.ledger.total("xfer") > 0
    assert platform.sim.ledger.total("app") == 0
