"""Unit tests for endpoint register configuration."""

import pytest

from repro.dtu import EndpointKind, EndpointRegisters, MemoryPerm


def test_fresh_endpoint_is_invalid():
    ep = EndpointRegisters()
    assert ep.kind == EndpointKind.INVALID


def test_send_config_fields():
    ep = EndpointRegisters.send_config(
        target_node=3, target_ep=1, label=0x1234, credits=4, msg_size=128
    )
    assert ep.kind == EndpointKind.SEND
    assert (ep.target_node, ep.target_ep) == (3, 1)
    assert ep.label == 0x1234
    assert ep.credits == ep.max_credits == 4
    assert ep.msg_size == 128


def test_receive_config_fields():
    ep = EndpointRegisters.receive_config(buffer_addr=512, slot_size=64, slot_count=8)
    assert ep.kind == EndpointKind.RECEIVE
    assert ep.buffer_addr == 512
    assert (ep.slot_size, ep.slot_count) == (64, 8)
    assert ep.replies_enabled


def test_memory_config_fields():
    ep = EndpointRegisters.memory_config(7, 0x1000, 4096, MemoryPerm.READ)
    assert ep.kind == EndpointKind.MEMORY
    assert (ep.mem_node, ep.mem_addr, ep.mem_size) == (7, 0x1000, 4096)
    assert ep.mem_perm & MemoryPerm.READ
    assert not (ep.mem_perm & MemoryPerm.WRITE)


def test_invalid_configs_rejected():
    with pytest.raises(ValueError):
        EndpointRegisters.send_config(0, 0, 0, credits=-1, msg_size=64)
    with pytest.raises(ValueError):
        EndpointRegisters.send_config(0, 0, 0, credits=1, msg_size=0)
    with pytest.raises(ValueError):
        EndpointRegisters.receive_config(0, slot_size=0, slot_count=4)
    with pytest.raises(ValueError):
        EndpointRegisters.memory_config(0, -4, 16, MemoryPerm.RW)
    with pytest.raises(ValueError):
        EndpointRegisters.memory_config(0, 0, 0, MemoryPerm.RW)


def test_invalidate_resets_everything():
    ep = EndpointRegisters.send_config(3, 1, 9, credits=2, msg_size=64)
    ep.invalidate()
    assert ep.kind == EndpointKind.INVALID
    assert ep.credits == 0
    assert ep.target_node == -1


def test_memory_perm_flags():
    assert MemoryPerm.RW == MemoryPerm.READ | MemoryPerm.WRITE
    assert not MemoryPerm.NONE & MemoryPerm.READ
