"""Unit and property tests for the receive ringbuffer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dtu import Message, MessageHeader, RingBuffer
from repro.dtu.message import HEADER_BYTES


def _msg(payload="x", label=0, length=8):
    return Message(MessageHeader(label=label, length=length), payload)


def test_push_and_fetch_in_order():
    ring = RingBuffer(slot_size=64, slot_count=4)
    for i in range(3):
        ring.push(_msg(payload=i, label=i))
    for expected in range(3):
        slot, message = ring.fetch()
        assert message.payload == expected
        ring.ack(slot)


def test_fetch_on_empty_returns_none():
    ring = RingBuffer(slot_size=64, slot_count=2)
    assert ring.fetch() is None


def test_full_ring_drops():
    ring = RingBuffer(slot_size=64, slot_count=2)
    assert ring.push(_msg(0)) is not None
    assert ring.push(_msg(1)) is not None
    assert ring.push(_msg(2)) is None
    assert ring.dropped == 1
    assert ring.delivered == 2


def test_slot_freed_by_ack_is_reusable():
    ring = RingBuffer(slot_size=64, slot_count=2)
    slot, _ = (ring.push(_msg(0)), ring.fetch())[1]
    ring.ack(slot)
    assert ring.push(_msg(1)) is not None
    assert ring.push(_msg(2)) is not None  # wrapped around into freed slot


def test_unacked_slot_blocks_writer_even_after_fetch():
    """Fetch advances the read position but the slot stays occupied
    until ack — a fetched-but-unprocessed message is never overwritten."""
    ring = RingBuffer(slot_size=64, slot_count=2)
    ring.push(_msg("a"))
    ring.push(_msg("b"))
    ring.fetch()  # read "a" but do not ack
    assert ring.push(_msg("c")) is None


def test_oversized_message_rejected():
    ring = RingBuffer(slot_size=32, slot_count=2)
    with pytest.raises(ValueError):
        ring.push(_msg(length=32))  # 32 + HEADER_BYTES > 32


def test_peek_and_double_ack():
    ring = RingBuffer(slot_size=64, slot_count=2)
    ring.push(_msg("data"))
    slot, message = ring.fetch()
    assert ring.peek(slot) is message
    ring.ack(slot)
    with pytest.raises(ValueError):
        ring.ack(slot)
    with pytest.raises(ValueError):
        ring.peek(slot)


def test_invalid_geometry():
    with pytest.raises(ValueError):
        RingBuffer(slot_size=0, slot_count=4)
    with pytest.raises(ValueError):
        RingBuffer(slot_size=64, slot_count=0)


@given(st.lists(st.sampled_from(["push", "consume"]), max_size=200),
       st.integers(min_value=1, max_value=8))
def test_ringbuffer_behaves_like_bounded_fifo(operations, slots):
    """Against a reference deque: order preserved, drops exactly when full."""
    import collections

    ring = RingBuffer(slot_size=64, slot_count=slots)
    reference = collections.deque()
    sequence = 0
    for op in operations:
        if op == "push":
            slot = ring.push(_msg(payload=sequence))
            if len(reference) < slots:
                assert slot is not None
                reference.append(sequence)
            else:
                assert slot is None
            sequence += 1
        else:
            fetched = ring.fetch()
            if reference:
                slot, message = fetched
                assert message.payload == reference.popleft()
                ring.ack(slot)
            else:
                assert fetched is None
    assert ring.occupied == len(reference)


def _reliable(seq, payload="x"):
    return Message(MessageHeader(label=0, length=8, seq=seq), payload)


def test_retransmit_after_full_ring_drop_is_delivered():
    """A reliable message dropped because the ring was full must NOT be
    recorded as seen: its retransmit is a first delivery, not a
    duplicate.  Only messages that were actually accepted deduplicate."""
    from repro.dtu.ringbuffer import DUPLICATE

    ring = RingBuffer(slot_size=64, slot_count=2)
    assert ring.push(_reliable(0), source=7) is not None
    assert ring.push(_reliable(1), source=7) is not None
    assert ring.push(_reliable(2), source=7) is None  # full: dropped
    assert ring.dropped == 1

    slot, _ = ring.fetch()
    ring.ack(slot)
    # The sender retransmits seq 2 after the ack was never seen.
    assert ring.push(_reliable(2), source=7) not in (None, DUPLICATE)
    assert ring.duplicates == 0
    # A retransmit of the now-accepted message IS suppressed.
    assert ring.push(_reliable(2), source=7) is DUPLICATE
    assert ring.duplicates == 1


def test_occupied_counter_matches_slot_scan():
    """The maintained occupancy counter stays exact through pushes,
    fetches, acks, drops, duplicates, and wrap-around."""
    ring = RingBuffer(slot_size=64, slot_count=4)

    def scan():
        return sum(slot is not None for slot in ring._slots)

    for seq in range(4):
        ring.push(_reliable(seq), source=1)
        assert ring.occupied == scan()
    ring.push(_reliable(4), source=1)  # dropped: full
    assert ring.occupied == scan() == 4
    for _ in range(2):
        slot, _ = ring.fetch()
        ring.ack(slot)
        assert ring.occupied == scan()
    ring.push(_reliable(1), source=1)  # duplicate: suppressed
    assert ring.occupied == scan() == 2
    ring.push(_reliable(5), source=1)  # wraps into a freed slot
    assert ring.occupied == scan() == 3
