"""RDMA-style memory endpoints: DRAM and remote-SPM access."""

import pytest

from repro.dtu import MemoryPerm, NoPermission
from tests.dtu.conftest import configure_memory_ep


def test_dram_write_then_read_roundtrip(platform):
    dtu = platform.pe(0).dtu
    configure_memory_ep(dtu, 0, platform.dram_node, 0x1000, 4096)

    def software():
        yield from dtu.write_memory(0, 128, b"persistent payload")
        data = yield from dtu.read_memory(0, 128, 18)
        return data

    assert platform.sim.run_process(software()) == b"persistent payload"
    assert platform.dram.memory.read(0x1000 + 128, 18) == b"persistent payload"


def test_read_into_local_spm(platform):
    pe = platform.pe(0)
    configure_memory_ep(pe.dtu, 0, platform.dram_node, 0, 1024)
    platform.dram.memory.write(64, b"from dram")

    def software():
        yield from pe.dtu.read_memory(0, 64, 9, into_addr=200)

    platform.sim.run_process(software())
    assert pe.spm_data.read(200, 9) == b"from dram"


def test_write_from_local_spm(platform):
    pe = platform.pe(0)
    configure_memory_ep(pe.dtu, 0, platform.dram_node, 0, 1024)
    pe.spm_data.write(300, b"spm bytes")

    def software():
        yield from pe.dtu.write_memory(0, 500, b"\x00" * 9, from_addr=300)

    platform.sim.run_process(software())
    assert platform.dram.memory.read(500, 9) == b"spm bytes"


def test_remote_spm_access_is_rdma(platform):
    """Reading another PE's SPM involves no software on the passive side."""
    reader, target = platform.pe(0), platform.pe(1)
    target.spm_data.write(0, b"remote-spm-data")
    configure_memory_ep(reader.dtu, 0, target.node, 0, 64, MemoryPerm.READ)

    def software():
        return (yield from reader.dtu.read_memory(0, 0, 15))

    assert platform.sim.run_process(software()) == b"remote-spm-data"
    assert not target.busy  # nothing ever ran on the target PE


def test_bounds_checked_against_region(platform):
    dtu = platform.pe(0).dtu
    configure_memory_ep(dtu, 0, platform.dram_node, 0x1000, 256)

    def overflow():
        yield from dtu.read_memory(0, 200, 100)

    with pytest.raises(NoPermission):
        platform.sim.run_process(overflow())


def test_permissions_enforced(platform):
    dtu = platform.pe(0).dtu
    configure_memory_ep(dtu, 0, platform.dram_node, 0, 256, MemoryPerm.READ)

    def forbidden_write():
        yield from dtu.write_memory(0, 0, b"x")

    with pytest.raises(NoPermission):
        platform.sim.run_process(forbidden_write())

    configure_memory_ep(dtu, 1, platform.dram_node, 0, 256, MemoryPerm.WRITE)

    def forbidden_read():
        yield from dtu.read_memory(1, 0, 1)

    with pytest.raises(NoPermission):
        platform.sim.run_process(forbidden_read())


def test_memory_op_on_wrong_ep_kind(platform):
    dtu = platform.pe(0).dtu

    def bad():
        yield from dtu.read_memory(3, 0, 1)

    with pytest.raises(NoPermission):
        platform.sim.run_process(bad())


def test_transfer_bandwidth_dominates_large_reads(platform):
    """A 4 KiB transfer should cost roughly size/8 cycles end to end."""
    dtu = platform.pe(0).dtu
    configure_memory_ep(dtu, 0, platform.dram_node, 0, 8192)

    def software():
        start = platform.sim.now
        yield from dtu.read_memory(0, 0, 4096)
        return platform.sim.now - start

    elapsed = platform.sim.run_process(software())
    serialization = 4096 / 8
    assert serialization <= elapsed <= serialization * 1.5


def test_memory_roundtrip_charged_as_xfer(platform):
    dtu = platform.pe(0).dtu
    configure_memory_ep(dtu, 0, platform.dram_node, 0, 8192)

    def software():
        yield from dtu.read_memory(0, 0, 1024)

    platform.sim.run_process(software())
    assert platform.sim.ledger.total("xfer") >= 1024 / 8
