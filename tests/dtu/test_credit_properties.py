"""Property tests for the credit system: randomized send/reply traffic."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dtu import MissingCredits
from repro.hw import Platform
from tests.dtu.conftest import configure_channel


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    schedule=st.lists(st.sampled_from(["send", "serve"]), min_size=1,
                      max_size=60),
    credits=st.integers(min_value=1, max_value=6),
    slots=st.integers(min_value=1, max_value=8),
)
def test_credits_bound_inflight_messages(schedule, credits, slots):
    """However traffic interleaves:

    - the sender can never have more unreplied messages than credits,
    - with credits <= slots nothing is ever dropped,
    - every message eventually served is answered exactly once.
    """
    platform = Platform.build(pe_count=2, mesh_width=3, mesh_height=2)
    sender, receiver = platform.pe(0).dtu, platform.pe(1).dtu
    configure_channel(sender, receiver, send_ep=0, recv_ep=1,
                      credits=credits, slot_count=slots)
    configure_channel(receiver, sender, send_ep=5, recv_ep=2,
                      slot_count=8, credits=8)

    state = {"sent": 0, "denied": 0, "served": 0}

    def driver():
        for action in schedule:
            if action == "send":
                try:
                    yield sender.send(0, state["sent"], 8, reply_ep=2)
                    state["sent"] += 1
                except MissingCredits:
                    state["denied"] += 1
                    # invariant: denial only at zero credits
                    assert sender.ep(0).credits == 0
            else:
                fetched = receiver.fetch_message(1)
                if fetched is None:
                    yield 50  # let in-flight messages land
                    fetched = receiver.fetch_message(1)
                if fetched is not None:
                    slot, message = fetched
                    yield receiver.reply(1, slot, message.payload, 8)
                    state["served"] += 1
            # global invariant: in-flight (sent - served) <= credits
            assert state["sent"] - state["served"] <= credits
            assert 0 <= sender.ep(0).credits <= credits

    platform.sim.run_process(driver())
    platform.sim.run()
    # with credits <= slots nothing may be dropped
    if credits <= slots:
        assert receiver.messages_dropped == 0
    # conservation: all credits return once everything is served and
    # the replies arrived
    if state["sent"] == state["served"]:
        assert sender.ep(0).credits == credits


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    sizes=st.lists(st.integers(min_value=0, max_value=8192), min_size=1,
                   max_size=20)
)
def test_noc_delivery_times_are_causal(sizes):
    """Packets injected in order on the same path arrive in order, and
    no packet arrives before its serialization time."""
    from repro.noc import MeshTopology, Network, Packet
    from repro.sim import Simulator

    sim = Simulator()
    net = Network(sim, MeshTopology(4, 4))
    net.attach(3, lambda p: None)
    completions = []
    for size in sizes:
        completions.append(net.send(Packet(0, 3, "mem_write", size)))
    assert completions == sorted(completions)
    for size, when in zip(sizes, completions):
        assert when >= size / net.bytes_per_cycle
