"""NoC-level isolation: privilege and remote configuration."""

import pytest

from repro.dtu import EndpointKind, EndpointRegisters, NoPermission
from tests.dtu.conftest import configure_channel


def test_all_dtus_privileged_at_boot(platform):
    assert all(pe.dtu.privileged for pe in platform.pes)


def test_kernel_downgrades_application_pe(platform):
    kernel, app = platform.pe(0).dtu, platform.pe(1).dtu

    def boot():
        yield from kernel.configure_remote(app.node, "downgrade")

    platform.sim.run_process(boot())
    assert not app.privileged
    assert kernel.privileged


def test_unprivileged_dtu_cannot_configure_remotely(platform):
    kernel, app, victim = (platform.pe(i).dtu for i in range(3))

    def boot():
        yield from kernel.configure_remote(app.node, "downgrade")

    platform.sim.run_process(boot())

    def attack():
        yield from app.configure_remote(
            victim.node,
            "configure",
            0,
            EndpointRegisters.receive_config(0, 64, 4),
        )

    with pytest.raises(NoPermission):
        platform.sim.run_process(attack())
    assert victim.eps[0].kind == EndpointKind.INVALID


def test_unprivileged_dtu_cannot_write_own_registers(platform):
    kernel, app = platform.pe(0).dtu, platform.pe(1).dtu

    def boot():
        yield from kernel.configure_remote(app.node, "downgrade")

    platform.sim.run_process(boot())
    with pytest.raises(NoPermission):
        app.configure_local("configure", 0, EndpointRegisters.receive_config(0, 64, 4))


def test_kernel_configures_remote_channel_then_apps_communicate(platform):
    """The Figure 2 flow: a kernel sets up both endpoints; afterwards the
    sender and receiver communicate without any kernel involvement."""
    kernel = platform.pe(0).dtu
    sender, receiver = platform.pe(1).dtu, platform.pe(2).dtu

    def boot():
        yield from kernel.configure_remote(sender.node, "downgrade")
        yield from kernel.configure_remote(receiver.node, "downgrade")
        yield from kernel.configure_remote(
            receiver.node,
            "configure",
            1,
            EndpointRegisters.receive_config(0, slot_size=128, slot_count=4),
        )
        yield from kernel.configure_remote(
            sender.node,
            "configure",
            0,
            EndpointRegisters.send_config(
                target_node=receiver.node, target_ep=1, label=7, credits=4,
                msg_size=128,
            ),
        )

    platform.sim.run_process(boot())

    def tx():
        yield sender.send(0, "direct", 8)

    def rx():
        slot, message = yield from receiver.wait_message(1)
        receiver.ack_message(1, slot)
        return message.payload

    platform.pe(1).run(tx(), "tx")
    proc = platform.pe(2).run(rx(), "rx")
    platform.sim.run()
    assert proc.done.value == "direct"


def test_kernel_can_reupgrade_pe(platform):
    kernel, app = platform.pe(0).dtu, platform.pe(1).dtu

    def flow():
        yield from kernel.configure_remote(app.node, "downgrade")
        assert not app.privileged
        yield from kernel.configure_remote(app.node, "upgrade")

    platform.sim.run_process(flow())
    assert app.privileged


def test_kernel_refills_credits_remotely(platform):
    kernel = platform.pe(0).dtu
    sender, receiver = platform.pe(1).dtu, platform.pe(2).dtu
    configure_channel(sender, receiver, credits=1)

    def flow():
        yield sender.send(0, "a", 8)
        assert sender.ep(0).credits == 0
        yield from kernel.configure_remote(sender.node, "refill_credits", 0)
        assert sender.ep(0).credits == 1

    platform.sim.run_process(flow())


def test_invalidate_endpoint_remotely(platform):
    kernel = platform.pe(0).dtu
    sender, receiver = platform.pe(1).dtu, platform.pe(2).dtu
    configure_channel(sender, receiver)

    def flow():
        yield from kernel.configure_remote(sender.node, "invalidate", 0)

    platform.sim.run_process(flow())
    assert sender.eps[0].kind == EndpointKind.INVALID
    with pytest.raises(NoPermission):
        sender.send(0, "x", 8)
