"""Regression tests: ``pending_events`` accounting around stale handles.

:meth:`Simulator.cancel` promises that cancelling an already-executed
handle is a no-op.  Before the fix, execution never blanked the entry,
so a late cancel incremented ``_cancelled`` against an entry no queue
held any more and ``pending_events`` drifted permanently negative —
one short per stale cancel.  These tests fail on the pre-fix engine.
"""

import pytest

from repro.sim import Simulator
from repro.sim.resources import Signal, WaitTimeout


# -- the engine bug itself ----------------------------------------------------


def test_cancel_after_execution_is_a_noop():
    """The docstring's promise, checked against the accounting: a
    handle whose callback already ran must not disturb the count
    (pre-fix this read -1)."""
    sim = Simulator()
    handle = sim.schedule(5, lambda _: None)
    sim.run()
    assert sim.pending_events == 0
    sim.cancel(handle)
    assert sim.pending_events == 0


def test_late_cancel_does_not_hide_a_live_event():
    """The corruption the drift causes: with one stale cancel absorbed,
    a genuinely queued event used to read as 0 pending."""
    sim = Simulator()
    handle = sim.schedule(5, lambda _: None)
    sim.run()
    sim.cancel(handle)
    sim.schedule(5, lambda _: None)
    assert sim.pending_events == 1


def test_cancel_after_execution_bucket_entry():
    """Same promise for the same-cycle FIFO bucket shape."""
    sim = Simulator()
    handle = sim.call_soon(lambda _: None)
    sim.run()
    sim.cancel(handle)
    assert sim.pending_events == 0


def test_cancel_own_handle_from_inside_callback():
    """A callback cancelling its *own* handle (the retry-timer pattern:
    the timer fires and disarms itself) must be a no-op."""
    sim = Simulator()
    handles = []
    fired = []

    def fire(_):
        fired.append(sim.now)
        sim.cancel(handles[0])

    handles.append(sim.schedule(3, fire))
    sim.run()
    assert fired == [3]
    assert sim.pending_events == 0


def test_cancel_after_step():
    sim = Simulator()
    handle = sim.schedule(1, lambda _: None)
    assert sim.step()
    sim.cancel(handle)
    assert sim.pending_events == 0


def test_double_cancel_counts_once():
    sim = Simulator()
    handle = sim.schedule(5, lambda _: None)
    sim.cancel(handle)
    sim.cancel(handle)
    assert sim.pending_events == 0
    sim.run()
    assert sim.pending_events == 0


def test_cancel_after_bounded_run_executed_entry():
    """``run(until=...)``'s bounded loop must blank entries too."""
    sim = Simulator()
    handle = sim.schedule(5, lambda _: None)
    sim.run(until=10)
    sim.cancel(handle)
    assert sim.pending_events == 0


def test_cancel_after_until_event_run():
    sim = Simulator()
    stop = sim.event("stop")
    handle = sim.schedule(5, lambda _: stop.succeed())
    sim.run(until_event=stop)
    sim.cancel(handle)
    assert sim.pending_events == 0


def test_schedule_at_handles_cancel_exactly():
    """The cross-shard injection primitive plays by the same rules."""
    sim = Simulator()
    ran = []
    executed = sim.schedule_at(4, ran.append)
    pending = sim.schedule_at(9, ran.append)
    sim.run(until=6)
    sim.cancel(executed)  # stale: already ran
    sim.cancel(pending)   # live: genuinely cancelled
    assert ran == [None]
    assert sim.pending_events == 0
    sim.run()
    assert sim.pending_events == 0


def test_schedule_at_rejects_the_past():
    sim = Simulator()
    sim.schedule(5, lambda _: None)
    sim.run()
    with pytest.raises(ValueError, match="past"):
        sim.schedule_at(3, lambda _: None)


def test_schedule_at_same_cycle_keeps_fifo():
    sim = Simulator()
    seen = []
    sim.call_soon(lambda _: seen.append("first"))
    sim.schedule_at(0, lambda _: seen.append("second"))
    sim.run()
    assert seen == ["first", "second"]


# -- the audited stale-handle users -------------------------------------------


def test_signal_fire_cancels_timeout_exactly():
    """``Signal.wait`` timeouts cancelled after the fire: the cancel
    hits a *pending* timer, and the accounting drains to exactly
    zero."""
    sim = Simulator()
    signal = Signal(sim, "sig")
    waited = signal.wait(timeout=100)
    assert sim.pending_events == 1  # the expiry timer
    sim.schedule(10, lambda _: signal.fire("value"))
    sim.run()
    assert waited.ok and waited.value == "value"
    assert signal.waiting == 0
    assert sim.pending_events == 0
    assert sim.now == 10  # the cancelled timer never dragged the clock


def test_signal_timeout_fires_exactly():
    sim = Simulator()
    signal = Signal(sim, "sig")
    waited = signal.wait(timeout=40)
    sim.run()
    assert waited.triggered and isinstance(waited.value, WaitTimeout)
    assert signal.waiting == 0
    assert sim.pending_events == 0


def test_signal_fire_after_timeout_leaves_count_exact():
    """Fire *after* the timeout already failed the wait: by then the
    waiter is deregistered, so the fire cancels nothing and the books
    stay balanced."""
    sim = Simulator()
    signal = Signal(sim, "sig")
    waited = signal.wait(timeout=40)
    sim.schedule(60, lambda _: signal.fire())
    sim.run()
    assert isinstance(waited.value, WaitTimeout)
    assert sim.pending_events == 0


def test_mixed_waiters_on_one_fire():
    """Several waiters, some bounded, one already expired: one fire
    cancels exactly the live timers."""
    sim = Simulator()
    signal = Signal(sim, "sig")
    expired = signal.wait(timeout=5)
    unbounded = signal.wait()
    bounded = signal.wait(timeout=500)
    sim.schedule(50, lambda _: signal.fire("go"))
    sim.run()
    assert isinstance(expired.value, WaitTimeout)
    assert unbounded.value == "go" and bounded.value == "go"
    assert sim.pending_events == 0
    assert sim.now == 50
