"""Unit tests for generator-driven processes."""

import pytest

from repro.sim import Simulator
from repro.sim.events import Interrupt


def test_process_advances_time_with_int_yields():
    sim = Simulator()

    def body():
        yield 10
        yield 15
        return sim.now

    assert sim.run_process(body()) == 25


def test_process_result_propagates():
    sim = Simulator()

    def body():
        yield 1
        return "done"

    assert sim.run_process(body()) == "done"


def test_process_exception_propagates():
    sim = Simulator()

    def body():
        yield 1
        raise RuntimeError("boom")

    with pytest.raises(RuntimeError, match="boom"):
        sim.run_process(body())


def test_process_waits_on_event_and_receives_value():
    sim = Simulator()
    ev = sim.event()

    def producer():
        yield 30
        ev.succeed("payload")

    def consumer():
        value = yield ev
        return (sim.now, value)

    sim.process(producer(), "producer")
    assert sim.run_process(consumer(), "consumer") == (30, "payload")


def test_failed_event_throws_into_process():
    sim = Simulator()
    ev = sim.event()

    def failer():
        yield 5
        ev.fail(ValueError("bad"))

    def waiter():
        try:
            yield ev
        except ValueError as exc:
            return f"caught {exc}"

    sim.process(failer(), "failer")
    assert sim.run_process(waiter(), "waiter") == "caught bad"


def test_joining_a_process_returns_its_result():
    sim = Simulator()

    def child():
        yield 40
        return 7

    def parent():
        proc = sim.process(child(), "child")
        result = yield proc
        return (sim.now, result)

    assert sim.run_process(parent(), "parent") == (40, 7)


def test_yield_from_composition():
    sim = Simulator()

    def inner():
        yield 10
        return 3

    def outer():
        a = yield from inner()
        b = yield from inner()
        return a + b

    assert sim.run_process(outer()) == 6
    assert sim.now == 20


def test_yielding_garbage_fails_process():
    sim = Simulator()

    def body():
        yield "nonsense"

    with pytest.raises(TypeError):
        sim.run_process(body())


def test_non_generator_rejected():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.process(lambda: None, "bad")


def test_interrupt_blocked_process():
    sim = Simulator()

    def sleeper():
        try:
            yield 1000
        except Interrupt as intr:
            return ("interrupted", sim.now, intr.cause)

    proc = sim.process(sleeper(), "sleeper")

    def interrupter():
        yield 50
        proc.interrupt("wakeup")

    sim.process(interrupter(), "interrupter")
    sim.run()
    assert proc.done.value == ("interrupted", 50, "wakeup")


def test_interrupt_finished_process_is_noop():
    sim = Simulator()

    def quick():
        yield 1

    proc = sim.process(quick(), "quick")
    sim.run()
    proc.interrupt()  # must not raise
    assert not proc.alive
