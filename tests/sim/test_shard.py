"""Unit tests for :mod:`repro.sim.shard`.

Three properties hold the tentpole together:

- the partition (ShardPlan) follows kernel-domain boundaries and
  derives the conservative quantum from boundary-link latency;
- the exact-mode ShardedSimulator reproduces the monolithic engine's
  execution order — byte for byte — at any shard count;
- quantum-barrier exchange (run_partitioned) delivers cross-shard
  records in (cycle, source shard, seq) order regardless of worker
  count, including records that straddle a barrier.
"""

import pytest

from repro.noc.topology import MeshTopology
from repro.sim import Simulator
from repro.sim.shard import (
    ShardContext,
    ShardPlan,
    ShardedSimulator,
    run_partitioned,
)


def _plan(shards=2, width=4, height=3, pes=8, hop_cycles=3):
    topology = MeshTopology(width, height)
    nodes = list(range(pes))
    half = len(nodes) // 2
    return ShardPlan.from_domains(
        [nodes[:half], nodes[half:]][:max(2, shards)][:shards]
        if shards > 1 else [nodes],
        shards, topology, hop_cycles,
    )


# -- ShardPlan ----------------------------------------------------------------


def test_plan_follows_domain_boundaries():
    topology = MeshTopology(4, 3)
    plan = ShardPlan.from_domains([[0, 1, 2, 3], [4, 5, 6, 7]], 2,
                                  topology, 3)
    assert plan.shard_count == 2
    assert [plan.shard_of(n) for n in range(4)] == [0] * 4
    assert [plan.shard_of(n) for n in range(4, 8)] == [1] * 4


def test_plan_assigns_orphan_nodes_to_nearest_domain():
    """Nodes outside every domain (DRAM, device slots) follow their
    nearest assigned node — deterministically, lowest id on ties."""
    topology = MeshTopology(4, 3)
    plan = ShardPlan.from_domains([[0, 1, 2, 3], [4, 5, 6, 7]], 2,
                                  topology, 3)
    # Node 11 (bottom-right) is closest to node 7 -> shard 1.
    assert plan.shard_of(11) == 1
    # Node 8 (below node 4) is closest to node 4 -> shard 1.
    assert plan.shard_of(8) == 1
    assert len(plan.node_to_shard) == topology.node_count


def test_plan_quantum_is_min_boundary_link_latency():
    topology = MeshTopology(4, 3)
    plan = ShardPlan.from_domains([[0, 1, 2, 3], [4, 5, 6, 7]], 2,
                                  topology, hop_cycles=7)
    assert plan.quantum == 7
    boundary = plan.boundary_links(topology)
    assert boundary  # the cut is real
    assert all(plan.shard_of(a) != plan.shard_of(b) for a, b in boundary)


def test_plan_groups_domains_like_the_kernel_partition():
    """4 domains into 2 shards: contiguous divmod chunks, exactly the
    kernel's own grouping rule."""
    topology = MeshTopology(4, 3)
    domains = [[0, 1], [2, 3], [4, 5], [6, 7]]
    plan = ShardPlan.from_domains(domains, 2, topology, 3)
    assert [plan.shard_of(n) for n in range(8)] == [0, 0, 0, 0, 1, 1, 1, 1]


def test_plan_rejects_more_shards_than_domains():
    topology = MeshTopology(4, 3)
    with pytest.raises(ValueError, match="cannot split"):
        ShardPlan.from_domains([[0, 1, 2, 3]], 2, topology, 3)


def test_plan_rejects_sparse_shard_ids():
    with pytest.raises(ValueError, match="dense"):
        ShardPlan([0, 2], quantum=3)


# -- exact mode: the ShardedSimulator facade ----------------------------------


def _interleaved_workload(sim, log, rounds=60):
    """Timers, zero-delay chains, events, and processes interleaved
    across cycles — every scheduling shape the engine offers."""

    def ticker(tag, period):
        def tick(_):
            log.append((sim.now, "tick", tag))
            if len(log) < rounds:
                sim.schedule(period, tick)
                if tag == 0:
                    sim.call_soon(lambda _: log.append((sim.now, "soon", tag)))
        return tick

    for tag, period in enumerate((3, 5, 7)):
        sim.schedule(period, ticker(tag, period))

    gate = sim.event("gate")
    gate.add_callback(lambda e: log.append((sim.now, "gate", e.value)))
    sim.schedule(11, lambda _: gate.succeed("opened"))

    def proc():
        for _ in range(5):
            yield sim.delay(4)
            log.append((sim.now, "proc", None))
        return "done"

    sim.process(proc(), "walker")


def test_exact_mode_matches_monolithic_order():
    mono_log, shard_log = [], []
    mono = Simulator()
    _interleaved_workload(mono, mono_log)
    mono.run(until=200)

    sharded = ShardedSimulator(_plan(2))
    _interleaved_workload(sharded, shard_log)
    sharded.run(until=200)

    assert shard_log == mono_log
    assert sharded.now == mono.now == 200
    assert sharded.pending_events == mono.pending_events


def test_exact_mode_until_event_stops_identically():
    for make in (Simulator, lambda: ShardedSimulator(_plan(2))):
        sim = make()
        log = []
        _interleaved_workload(sim, log)
        stop = sim.event("stop")
        sim.schedule(12, lambda _: stop.succeed())
        sim.run(until_event=stop)
        assert sim.now == 12
        if isinstance(sim, Simulator):
            expected = (sim.now, log[-1])
        else:
            assert (sim.now, log[-1]) == expected


def test_exact_mode_cancel_accounting():
    """Facade cancels blank entries across members; the summed count
    stays exact through pops on either member."""
    sharded = ShardedSimulator(_plan(2))
    member0, member1 = sharded.members
    live = member0.schedule(10, lambda _: None)
    stale = member1.schedule(4, lambda _: None)
    sharded.run(until=6)
    sharded.cancel(stale)  # already executed: no-op
    assert sharded.pending_events == 1
    sharded.cancel(live)
    assert sharded.pending_events == 0
    sharded.run()
    assert sharded.pending_events == 0


def test_exact_mode_run_process_round_trip():
    sharded = ShardedSimulator(_plan(2))

    def body():
        yield sharded.delay(30)
        return "finished"

    assert sharded.run_process(body(), "main") == "finished"
    assert sharded.now == 30


def test_member_for_routes_by_plan():
    plan = _plan(2)
    sharded = ShardedSimulator(plan)
    for node in range(len(plan.node_to_shard)):
        assert sharded.member_for(node) is sharded.members[plan.shard_of(node)]


def test_deliver_counts_only_boundary_crossings():
    class Pkt:
        def __init__(self, source, destination, size_bytes):
            self.source, self.destination = source, destination
            self.size_bytes = size_bytes

    sharded = ShardedSimulator(_plan(2))
    seen = []
    sharded.deliver(Pkt(0, 1, 64), lambda p: seen.append(p.destination), 5)
    sharded.deliver(Pkt(0, 7, 80), lambda p: seen.append(p.destination), 9)
    assert (sharded.cross_packets, sharded.cross_bytes) == (1, 80)
    sharded.run()
    assert seen == [1, 7]
    assert sharded.now == 9


# -- quantum mode: run_partitioned --------------------------------------------


def _pingpong_builder(shard_id, hops=12, quantum=5):
    def build(ctx):
        log = []

        def on_ball(n):
            log.append((ctx.sim.now, n))
            if n < hops:
                ctx.send(1 - ctx.shard_id, "ball", n + 1)

        ctx.subscribe("ball", on_ball)
        if shard_id == 0:
            ctx.sim.schedule(2, lambda _: ctx.send(1, "ball", 0))
        return lambda: log

    return build


def test_partitioned_serial_and_forked_agree():
    builders = [_pingpong_builder(0), _pingpong_builder(1)]
    serial = run_partitioned(builders, quantum=5, workers=1)
    forked = run_partitioned(builders, quantum=5)
    assert serial == forked
    # Every hop advanced exactly one quantum.
    cycles = sorted(c for log in serial for c, _n in log)
    assert cycles == [7 + 5 * n for n in range(13)]


def test_barrier_straddle_preserves_cycle_seq_order():
    """Two shards both send a burst whose arrivals straddle a quantum
    barrier; the receiver must see them in (cycle, source shard, seq)
    order no matter which egress buffer arrived first."""

    def sender(shard_id):
        def build(ctx):
            def burst(_):
                # Latencies chosen so arrivals land on both sides of the
                # receiver's next barrier (windows are one quantum = 4).
                for index, latency in enumerate((4, 5, 7, 9)):
                    ctx.send(2, "burst", (ctx.shard_id, index),
                             latency=latency)
            ctx.sim.schedule(1 + shard_id, burst)
            return lambda: None
        return build

    def receiver(ctx):
        log = []
        ctx.subscribe("burst", lambda payload: log.append(
            (ctx.sim.now, payload)
        ))
        return lambda: log

    for workers in (1, None):
        result = run_partitioned(
            [sender(0), sender(1), receiver], quantum=4, workers=workers
        )
        log = result[2]
        # Arrival cycles are monotone, and ties break by (shard, seq).
        assert log == sorted(log)
        arrived = [payload for _cycle, payload in log]
        expected = sorted(
            ((shard, index) for shard in (0, 1) for index in range(4)),
            key=lambda p: (1 + p[0] + (4, 5, 7, 9)[p[1]], p[0], p[1]),
        )
        assert arrived == expected


def test_partitioned_rejects_latency_below_quantum():
    def build(ctx):
        ctx.subscribe("x", lambda _p: None)
        with pytest.raises(ValueError, match="undercuts the quantum"):
            ctx.send(1, "x", None, latency=2)
        return lambda: "ok"

    assert run_partitioned([build, lambda ctx: (lambda: None)],
                           quantum=5, workers=1)[0] == "ok"


def test_partitioned_window_skips_idle_gaps():
    """A long quiet stretch is jumped in one window, not crawled
    through quantum by quantum."""
    def build(ctx):
        log = []
        ctx.sim.schedule(10_000, lambda _: log.append(ctx.sim.now))
        return lambda: log

    (log,) = run_partitioned([build], quantum=3, workers=1)
    assert log == [10_000]


def test_shard_context_unknown_channel_is_an_error():
    def sender(ctx):
        ctx.sim.schedule(1, lambda _: ctx.send(1, "nobody-home", 1))
        return lambda: None

    def receiver(ctx):
        return lambda: None

    with pytest.raises(RuntimeError, match="no subscriber"):
        run_partitioned([sender, receiver], quantum=3, workers=1)


def test_shard_context_validates_destination():
    ctx = ShardContext(0, 2, quantum=3)
    with pytest.raises(ValueError, match="no shard"):
        ctx.send(5, "x", None)
    with pytest.raises(ValueError, match="own shard"):
        ctx.send(0, "x", None)
