"""Determinism: identical runs produce identical simulations.

The whole evaluation depends on this — results tables are expected to
be byte-identical across runs.
"""

from repro.m3.system import M3System
from repro.workloads.cat_tr import INPUT_PATH, input_bytes, m3_cat_tr


def _run_once():
    system = M3System(pe_count=6).boot()
    system.fs_preload({INPUT_PATH: input_bytes()})
    wall, ledger = system.run_app(m3_cat_tr, name="cat+tr")
    return wall, tuple(sorted(ledger.items())), system.sim.now


def test_full_stack_run_is_deterministic():
    assert _run_once() == _run_once()


def test_linux_run_is_deterministic():
    from repro.eval.fig3_micro import lx_pipe_cycles

    assert lx_pipe_cycles(False) == lx_pipe_cycles(False)
