"""Unit tests for events."""

import pytest

from repro.sim import Simulator
from repro.sim.events import Event


def test_event_starts_pending():
    sim = Simulator()
    ev = sim.event("e")
    assert not ev.triggered
    assert not ev.ok


def test_succeed_carries_value():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(42)
    assert ev.triggered and ev.ok
    assert ev.value == 42


def test_double_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    ev.succeed()
    with pytest.raises(RuntimeError):
        ev.succeed()
    with pytest.raises(RuntimeError):
        ev.fail(ValueError("x"))


def test_fail_requires_exception():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_callbacks_run_via_queue():
    sim = Simulator()
    ev = sim.event()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    ev.succeed("hello")
    assert seen == []  # not synchronous
    sim.run()
    assert seen == ["hello"]


def test_callback_on_already_triggered_event_still_fires():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    sim.run()
    assert seen == [1]


def test_discard_callback_prevents_invocation():
    sim = Simulator()
    ev = sim.event()
    seen = []
    cb = lambda e: seen.append(e.value)
    ev.add_callback(cb)
    ev.discard_callback(cb)
    ev.succeed(9)
    sim.run()
    assert seen == []


def test_event_equality_is_identity():
    sim = Simulator()
    assert Event(sim) != Event(sim)
