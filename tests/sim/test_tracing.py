"""The tracer utility."""

from repro.sim import Simulator
from repro.sim.tracing import Tracer


def test_disabled_tracer_records_nothing():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.log("cat", "ignored")
    assert tracer.records == []


def test_records_carry_time_and_category():
    sim = Simulator()
    tracer = Tracer(sim, enabled=True)
    tracer.log("alpha", "first")
    sim.schedule(50, lambda _: tracer.log("beta", "second"))
    sim.run()
    assert [(r.time, r.category) for r in tracer.records] == [
        (0, "alpha"), (50, "beta"),
    ]
    assert tracer.filter("beta")[0].text == "second"
    assert "alpha" in tracer.render()
    tracer.clear()
    assert tracer.records == []
