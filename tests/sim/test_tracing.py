"""The tracer utility."""

import pytest

from repro.sim import Simulator
from repro.sim.tracing import Tracer


def test_disabled_tracer_records_nothing():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.log("cat", "ignored")
    assert tracer.records == []


def test_records_carry_time_and_category():
    sim = Simulator()
    tracer = Tracer(sim, enabled=True)
    tracer.log("alpha", "first")
    sim.schedule(50, lambda _: tracer.log("beta", "second"))
    sim.run()
    assert [(r.time, r.category) for r in tracer.records] == [
        (0, "alpha"), (50, "beta"),
    ]
    assert tracer.filter("beta")[0].text == "second"
    assert "alpha" in tracer.render()
    tracer.clear()
    assert tracer.records == []


def test_capacity_rings_and_counts_drops():
    sim = Simulator()
    tracer = Tracer(sim, enabled=True, capacity=3)
    for index in range(5):
        tracer.log("cat", f"r{index}")
    # Oldest records fall off the front; the drop counter says how many.
    assert [r.text for r in tracer.records] == ["r2", "r3", "r4"]
    assert tracer.dropped_records == 2
    assert len(tracer.filter("cat")) == 3
    tracer.clear()
    assert tracer.records == [] and tracer.dropped_records == 0


def test_unbounded_by_default():
    sim = Simulator()
    tracer = Tracer(sim, enabled=True)
    for index in range(100):
        tracer.log("cat", str(index))
    assert len(tracer.records) == 100
    assert tracer.dropped_records == 0


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        Tracer(Simulator(), capacity=0)
