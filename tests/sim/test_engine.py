"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Simulator


def test_time_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0


def test_schedule_runs_in_time_order():
    sim = Simulator()
    seen = []
    sim.schedule(30, lambda _: seen.append("c"))
    sim.schedule(10, lambda _: seen.append("a"))
    sim.schedule(20, lambda _: seen.append("b"))
    sim.run()
    assert seen == ["a", "b", "c"]
    assert sim.now == 30


def test_same_cycle_callbacks_fifo():
    sim = Simulator()
    seen = []
    for i in range(5):
        sim.schedule(7, lambda _, i=i: seen.append(i))
    sim.run()
    assert seen == [0, 1, 2, 3, 4]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1, lambda _: None)
    with pytest.raises(ValueError):
        sim.delay(-5)


def test_run_until_stops_clock_at_limit():
    sim = Simulator()
    sim.schedule(100, lambda _: None)
    sim.run(until=40)
    assert sim.now == 40
    assert sim.pending_events == 1
    sim.run()
    assert sim.now == 100


def test_run_until_with_empty_queue_advances_clock():
    sim = Simulator()
    sim.run(until=55)
    assert sim.now == 55


def test_call_soon_runs_after_current_callbacks():
    sim = Simulator()
    seen = []

    def first(_):
        seen.append("first")
        sim.call_soon(lambda _: seen.append("soon"))

    sim.schedule(5, first)
    sim.schedule(5, lambda _: seen.append("second"))
    sim.run()
    assert seen == ["first", "second", "soon"]


def test_step_returns_false_on_empty_queue():
    sim = Simulator()
    assert sim.step() is False


def test_delay_charges_ledger_tag():
    sim = Simulator()
    sim.delay(25, tag="os")
    sim.delay(10, tag="os")
    sim.delay(7, tag="xfer")
    assert sim.ledger.total("os") == 35
    assert sim.ledger.total("xfer") == 7


def test_delay_without_tag_charges_nothing():
    sim = Simulator()
    sim.delay(25)
    assert sim.ledger.snapshot() == {}
