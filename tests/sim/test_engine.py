"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Simulator


def test_time_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0


def test_schedule_runs_in_time_order():
    sim = Simulator()
    seen = []
    sim.schedule(30, lambda _: seen.append("c"))
    sim.schedule(10, lambda _: seen.append("a"))
    sim.schedule(20, lambda _: seen.append("b"))
    sim.run()
    assert seen == ["a", "b", "c"]
    assert sim.now == 30


def test_same_cycle_callbacks_fifo():
    sim = Simulator()
    seen = []
    for i in range(5):
        sim.schedule(7, lambda _, i=i: seen.append(i))
    sim.run()
    assert seen == [0, 1, 2, 3, 4]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1, lambda _: None)
    with pytest.raises(ValueError):
        sim.delay(-5)


def test_run_until_stops_clock_at_limit():
    sim = Simulator()
    sim.schedule(100, lambda _: None)
    sim.run(until=40)
    assert sim.now == 40
    assert sim.pending_events == 1
    sim.run()
    assert sim.now == 100


def test_run_until_with_empty_queue_advances_clock():
    sim = Simulator()
    sim.run(until=55)
    assert sim.now == 55


def test_call_soon_runs_after_current_callbacks():
    sim = Simulator()
    seen = []

    def first(_):
        seen.append("first")
        sim.call_soon(lambda _: seen.append("soon"))

    sim.schedule(5, first)
    sim.schedule(5, lambda _: seen.append("second"))
    sim.run()
    assert seen == ["first", "second", "soon"]


def test_step_returns_false_on_empty_queue():
    sim = Simulator()
    assert sim.step() is False


def test_delay_charges_ledger_tag():
    sim = Simulator()
    sim.delay(25, tag="os")
    sim.delay(10, tag="os")
    sim.delay(7, tag="xfer")
    assert sim.ledger.total("os") == 35
    assert sim.ledger.total("xfer") == 7


def test_delay_without_tag_charges_nothing():
    sim = Simulator()
    sim.delay(25)
    assert sim.ledger.snapshot() == {}


# -- integer-cycle validation --------------------------------------------------


def test_schedule_coerces_integral_float():
    sim = Simulator()
    seen = []
    sim.schedule(3.0, lambda _: seen.append(sim.now))
    sim.run()
    assert seen == [3]
    assert type(sim.now) is int


def test_schedule_rejects_fractional_delay():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(2.5, lambda _: None)


def test_schedule_rejects_non_numeric_delay():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.schedule("10", lambda _: None)


def test_delay_coerces_integral_float_and_rejects_fractional():
    sim = Simulator()
    sim.delay(4.0, tag="os")
    assert sim.ledger.total("os") == 4
    with pytest.raises(ValueError):
        sim.delay(0.5)
    with pytest.raises(TypeError):
        sim.delay(None)


# -- cancellation --------------------------------------------------------------


def test_cancel_future_event_never_fires():
    sim = Simulator()
    seen = []
    handle = sim.schedule(10, lambda _: seen.append("cancelled"))
    sim.schedule(20, lambda _: seen.append("kept"))
    sim.cancel(handle)
    sim.run()
    assert seen == ["kept"]
    assert sim.pending_events == 0


def test_cancel_same_cycle_callback():
    sim = Simulator()
    seen = []
    handle = sim.call_soon(lambda _: seen.append("cancelled"))
    sim.cancel(handle)
    sim.call_soon(lambda _: seen.append("kept"))
    sim.run()
    assert seen == ["kept"]
    assert sim.pending_events == 0


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(5, lambda _: None)
    sim.cancel(handle)
    sim.cancel(handle)  # second cancel must not corrupt the accounting
    assert sim.pending_events == 0
    sim.run()
    assert sim.now == 0  # a dead entry never drags the clock forward


def test_cancelled_entry_does_not_hold_the_clock():
    """A run whose only remaining work is cancelled entries terminates."""
    sim = Simulator()
    for delay in (3, 7, 11):
        sim.cancel(sim.schedule(delay, lambda _: None))
    sim.run()
    assert sim.pending_events == 0


# -- run(until=...) boundary semantics ----------------------------------------


def test_run_until_fires_events_exactly_at_boundary():
    sim = Simulator()
    seen = []
    sim.schedule(40, lambda _: seen.append("at"))
    sim.schedule(41, lambda _: seen.append("after"))
    sim.run(until=40)
    assert seen == ["at"]
    assert sim.now == 40
    assert sim.pending_events == 1
    sim.run()
    assert seen == ["at", "after"]
    assert sim.now == 41


def test_run_until_clock_lands_on_limit_when_queue_drains_early():
    sim = Simulator()
    sim.schedule(10, lambda _: None)
    sim.run(until=80)
    assert sim.now == 80
    assert sim.pending_events == 0


def test_run_until_same_limit_twice_is_a_no_op():
    sim = Simulator()
    sim.schedule(90, lambda _: None)
    sim.run(until=30)
    sim.run(until=30)
    assert sim.now == 30
    assert sim.pending_events == 1
