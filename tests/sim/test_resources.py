"""Unit tests for mailboxes, semaphores and signals."""

import pytest

from repro.sim import Mailbox, Semaphore, Signal, Simulator
from repro.sim.resources import WaitTimeout


def test_mailbox_get_before_put_blocks():
    sim = Simulator()
    box = Mailbox(sim)

    def consumer():
        item = yield box.get()
        return (sim.now, item)

    def producer():
        yield 20
        box.put("x")

    sim.process(producer(), "producer")
    assert sim.run_process(consumer(), "consumer") == (20, "x")


def test_mailbox_preserves_fifo_order():
    sim = Simulator()
    box = Mailbox(sim)
    box.put(1)
    box.put(2)
    box.put(3)

    def consumer():
        items = []
        for _ in range(3):
            items.append((yield box.get()))
        return items

    assert sim.run_process(consumer()) == [1, 2, 3]
    assert len(box) == 0


def test_mailbox_multiple_waiters_fifo():
    sim = Simulator()
    box = Mailbox(sim)
    results = []

    def consumer(tag):
        item = yield box.get()
        results.append((tag, item))

    sim.process(consumer("a"), "a")
    sim.process(consumer("b"), "b")

    def producer():
        yield 5
        box.put(1)
        box.put(2)

    sim.process(producer(), "p")
    sim.run()
    assert results == [("a", 1), ("b", 2)]


def test_semaphore_initial_tokens():
    sim = Simulator()
    sem = Semaphore(sim, tokens=2)

    def taker():
        yield sem.acquire()
        yield sem.acquire()
        return sim.now

    assert sim.run_process(taker()) == 0


def test_semaphore_blocks_then_releases_fifo():
    sim = Simulator()
    sem = Semaphore(sim)
    order = []

    def taker(tag):
        yield sem.acquire()
        order.append(tag)

    sim.process(taker("first"), "first")
    sim.process(taker("second"), "second")

    def releaser():
        yield 10
        sem.release(2)

    sim.process(releaser(), "r")
    sim.run()
    assert order == ["first", "second"]
    assert sem.tokens == 0


def test_semaphore_rejects_negative():
    sim = Simulator()
    with pytest.raises(ValueError):
        Semaphore(sim, tokens=-1)
    sem = Semaphore(sim)
    with pytest.raises(ValueError):
        sem.release(-2)


def test_signal_wakes_all_current_waiters():
    sim = Simulator()
    sig = Signal(sim)
    woken = []

    def waiter(tag):
        value = yield sig.wait()
        woken.append((tag, value, sim.now))

    sim.process(waiter("a"), "a")
    sim.process(waiter("b"), "b")

    def firer():
        yield 33
        sig.fire("go")

    sim.process(firer(), "f")
    sim.run()
    assert sorted(woken) == [("a", "go", 33), ("b", "go", 33)]
    assert sig.waiting == 0


def test_signal_is_rearmable():
    sim = Simulator()
    sig = Signal(sim)
    hits = []

    def waiter():
        for _ in range(3):
            yield sig.wait()
            hits.append(sim.now)

    def firer():
        for t in (10, 20, 30):
            yield 10
            sig.fire()

    sim.process(waiter(), "w")
    sim.process(firer(), "f")
    sim.run()
    assert hits == [10, 20, 30]


def test_signal_fire_wins_same_cycle_race():
    """fire() and a wait's timeout expiring on the same cycle, fire
    scheduled first: the waiter wakes normally and the late expiry
    callback must not corrupt the waiter list."""
    sim = Simulator()
    sig = Signal(sim)
    outcome = []

    sim.schedule(50, lambda _: sig.fire("go"))  # queued before expire

    def waiter():
        try:
            value = yield sig.wait(timeout=50)
            outcome.append(("woken", value, sim.now))
        except WaitTimeout:
            outcome.append(("timeout", sim.now))

    sim.process(waiter(), "w")
    sim.run()  # drains the queue, running the no-op expiry too
    assert outcome == [("woken", "go", 50)]
    assert sig.waiting == 0


def test_signal_timeout_wins_same_cycle_race():
    """The mirror ordering: the expiry callback runs first, the fire on
    the same cycle second.  The waiter times out, the fire wakes nobody,
    and the signal stays usable afterwards."""
    sim = Simulator()
    sig = Signal(sim)
    outcome = []

    def waiter():
        try:
            value = yield sig.wait(timeout=50)
            outcome.append(("woken", value, sim.now))
        except WaitTimeout:
            outcome.append(("timeout", sim.now))

    sim.process(waiter(), "w")  # starts at t=0, queues expire for t=50
    # Queue the fire for t=50 *after* the expire (nested schedule runs
    # at t=0 once the waiter process has started).
    sim.schedule(0, lambda _: sim.schedule(50, lambda _: sig.fire("late")))
    sim.run()
    assert outcome == [("timeout", 50)]
    assert sig.waiting == 0  # the waiter list was not corrupted

    # A fresh wait on the same signal still works.
    woken = []

    def late_waiter():
        woken.append((yield sig.wait()))

    sim.process(late_waiter(), "late")
    sim.schedule(10, lambda _: sig.fire("again"))
    sim.run()
    assert woken == ["again"]


def test_mailbox_put_wakes_waiters_in_scheduling_not_call_order():
    """Same-cycle producer/consumer ordering: ``put`` must not run the
    waiter's continuation inside the producer's stack frame.  The
    producer finishes its cycle first; blocked consumers then resume in
    FIFO order within the same cycle."""
    sim = Simulator()
    box = Mailbox(sim)
    log = []

    def consumer(index):
        item = yield box.get()
        log.append(("consumer", index, item, sim.now))

    def producer():
        yield 5
        box.put("a")
        log.append(("producer", "after-put-a", sim.now))
        box.put("b")
        log.append(("producer", "after-put-b", sim.now))

    sim.process(consumer(0), "c0")
    sim.process(consumer(1), "c1")
    sim.process(producer(), "p")
    sim.run()
    assert log == [
        ("producer", "after-put-a", 5),
        ("producer", "after-put-b", 5),
        ("consumer", 0, "a", 5),
        ("consumer", 1, "b", 5),
    ]


def test_semaphore_release_wakes_waiters_in_scheduling_not_call_order():
    sim = Simulator()
    gate = Semaphore(sim, tokens=0)
    log = []

    def worker(index):
        yield gate.acquire()
        log.append(("worker", index, sim.now))

    def releaser():
        yield 3
        gate.release(2)
        log.append(("released", sim.now))

    sim.process(worker(0), "w0")
    sim.process(worker(1), "w1")
    sim.process(releaser(), "r")
    sim.run()
    assert log == [("released", 3), ("worker", 0, 3), ("worker", 1, 3)]


def test_signal_fire_cancels_pending_timeout_timers():
    """A fired wait(timeout=...) leaves no dead timer behind: the run
    ends at the fire cycle, and nothing stays pending afterwards."""
    sim = Simulator()
    signal = Signal(sim)
    woken = []

    def waiter():
        yield signal.wait(timeout=1000)
        woken.append(sim.now)

    def firer():
        yield 10
        signal.fire()

    sim.process(waiter(), "w")
    sim.process(firer(), "f")
    sim.run()
    assert woken == [10]
    assert sim.now == 10  # the cancelled timer never dragged the clock
    assert sim.pending_events == 0


def test_signal_timeout_still_fires_when_not_signalled():
    sim = Simulator()
    signal = Signal(sim)

    def waiter():
        try:
            yield signal.wait(timeout=25)
        except WaitTimeout:
            return sim.now
        return None

    assert sim.run_process(waiter(), "w") == 25
    assert sim.pending_events == 0
