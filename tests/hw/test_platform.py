"""Unit tests for platform assembly and the PE model."""

import pytest

from repro.hw import Platform, PlatformConfig


def test_build_places_dram_on_last_node():
    platform = Platform.build(pe_count=4)
    assert platform.dram_node == platform.topology.node_count - 1
    assert len(platform.pes) == 4


def test_heterogeneous_build():
    platform = Platform.build(pe_count=2, accelerators={"fft-accel": 1})
    types = [pe.core.type.name for pe in platform.pes]
    assert types == ["xtensa", "xtensa", "fft-accel"]


def test_too_many_pes_rejected():
    with pytest.raises(ValueError):
        PlatformConfig.homogeneous(16, mesh_width=4, mesh_height=4)


def test_unknown_core_type_rejected():
    with pytest.raises(ValueError):
        PlatformConfig(pe_types=["quantum"])


def test_find_free_pe_skips_busy_and_filters_type():
    platform = Platform.build(pe_count=2, accelerators={"fft-accel": 1})

    def forever():
        while True:
            yield 1000

    platform.pe(0).run(forever(), "hog")
    free = platform.find_free_pe()
    assert free is platform.pe(1)
    accel = platform.find_free_pe("fft-accel")
    assert accel is platform.pe(2)
    assert platform.find_free_pe("no-such-type") is None


def test_pe_single_occupancy():
    platform = Platform.build(pe_count=1)
    pe = platform.pe(0)

    def body():
        yield 10

    pe.run(body(), "first")
    with pytest.raises(RuntimeError):
        pe.run(body(), "second")
    platform.sim.run()
    assert not pe.busy  # occupant finished


def test_pe_release_resets_allocator():
    platform = Platform.build(pe_count=1)
    pe = platform.pe(0)
    first = pe.alloc_buffer(1024)
    second = pe.alloc_buffer(1024)
    assert second == first + 1024
    pe.release()
    assert pe.alloc_buffer(16) == first


def test_spm_exhaustion():
    platform = Platform.build(pe_count=1)
    pe = platform.pe(0)
    with pytest.raises(MemoryError):
        pe.alloc_buffer(pe.spm_data.size + 1)


def test_compute_charges_app_tag():
    platform = Platform.build(pe_count=1)
    pe = platform.pe(0)

    def body():
        yield pe.compute(500)

    platform.sim.run_process(body())
    assert platform.sim.ledger.total("app") == 500
