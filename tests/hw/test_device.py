"""Devices with interrupts-as-messages (the Section 4.4.2 idea)."""

import pytest

from repro.dtu.registers import EndpointRegisters, MemoryPerm
from repro.hw.device import (
    CMD_RECV_EP,
    DMA_MEM_EP,
    IRQ_SEND_EP,
    BlockDevice,
    TimerDevice,
)
from repro.m3.lib.gate import RecvGate
from repro.m3.system import M3System


def _system_with_device(device_cls, **device_kwargs):
    system = M3System(pe_count=4).boot(with_fs=False)
    device_node = len(system.platform.pes)  # first unused mesh node
    device = device_cls(
        system.sim, system.platform.network, device_node, **device_kwargs
    )
    return system, device


def _wire_irq(system, device, rgate):
    """Kernel wires the device's interrupt endpoint to an app rgate —
    "sent them to any PE, independent of the core"."""

    def configure():
        yield from system.kernel.dtu.configure_remote(
            device.node,
            "configure",
            IRQ_SEND_EP,
            EndpointRegisters.send_config(
                target_node=rgate.owner_node,
                target_ep=rgate.ep,
                label=0xD1,
                credits=4,
                msg_size=64,
            ),
        )

    system.sim.run_process(configure(), "wire-irq")


class _RGateInfo:
    def __init__(self, owner_node, ep):
        self.owner_node = owner_node
        self.ep = ep


def test_timer_interrupt_arrives_as_message():
    system, timer = _system_with_device(TimerDevice)
    result = {}

    def app(env):
        rgate = yield from RecvGate.create(env, slot_size=64, slot_count=4)
        _wire_irq(system, timer, _RGateInfo(env.pe.node, rgate.ep))
        timer.program(5_000)
        armed_at = env.sim.now
        slot, message = yield from rgate.receive()
        rgate.ack(slot)
        result["latency"] = env.sim.now - armed_at
        return message.payload

    payload = system.run_app(app, name="timer-app")
    kind, name, extra = payload
    assert (kind, name) == ("irq", "timer")
    assert result["latency"] >= 5_000
    assert result["latency"] < 5_200  # delay + message flight only


def test_periodic_timer_and_cancel():
    system, timer = _system_with_device(TimerDevice)

    def app(env):
        rgate = yield from RecvGate.create(env, slot_size=64, slot_count=8)
        _wire_irq(system, timer, _RGateInfo(env.pe.node, rgate.ep))
        timer.program(1_000, periodic=True)
        stamps = []
        for _ in range(3):
            slot, message = yield from rgate.receive()
            rgate.ack(slot)
            stamps.append(message.payload[2][0])
        timer.cancel()
        yield 5_000
        return stamps, timer.interrupts_sent

    stamps, sent = system.run_app(app)
    assert len(stamps) == 3
    assert stamps[1] - stamps[0] == 1_000
    assert sent == 3  # nothing after cancel


def test_unwired_interrupt_is_masked():
    system, timer = _system_with_device(TimerDevice)
    timer.raise_interrupt()
    assert timer.interrupts_sent == 0  # dropped, no crash


def test_block_device_dma_roundtrip():
    """Commands as messages, data via the device's memory endpoint,
    completion as an interrupt."""
    from repro.dtu.registers import EndpointRegisters
    from repro.m3.lib.gate import MemGate, SendGate

    system, disk = _system_with_device(BlockDevice)
    disk.media.write(3 * 512, b"sector three says hi")

    def app(env):
        # a DRAM buffer shared with the device
        dma = yield from MemGate.create(env, 4096, MemoryPerm.RW.value)
        irq_gate = yield from RecvGate.create(env, slot_size=64, slot_count=4)

        # kernel-side wiring: the device's IRQ endpoint, its command
        # receive endpoint, and its DMA window onto our buffer
        kernel_vpe = system.kernel.vpes[env.vpe_id]
        dma_region = kernel_vpe.captable.get(dma.selector).obj

        def configure():
            yield from system.kernel.dtu.configure_remote(
                disk.node, "configure", IRQ_SEND_EP,
                EndpointRegisters.send_config(
                    target_node=env.pe.node, target_ep=irq_gate.ep,
                    label=7, credits=4, msg_size=64,
                ),
            )
            yield from system.kernel.dtu.configure_remote(
                disk.node, "configure", CMD_RECV_EP,
                EndpointRegisters.receive_config(0, slot_size=64,
                                                 slot_count=4),
            )
            yield from system.kernel.dtu.configure_remote(
                disk.node, "configure", DMA_MEM_EP,
                EndpointRegisters.memory_config(
                    dma_region.node, dma_region.address, dma_region.size,
                    MemoryPerm.RW,
                ),
            )
            # and a send gate from *us* to the device's command endpoint
            yield from system.kernel.dtu.configure_remote(
                env.pe.node, "configure", 5,
                EndpointRegisters.send_config(
                    target_node=disk.node, target_ep=CMD_RECV_EP,
                    label=1, credits=4, msg_size=64,
                ),
            )

        yield from configure()
        disk.start()

        # read sector 3 into our buffer at offset 128
        env.dtu.send(5, ("read", 3, 1, 128), 32)
        slot, irq = yield from irq_gate.receive()
        irq_gate.ack(slot)
        data = yield from dma.read(128, 20)

        # write it back to sector 7
        yield from dma.write(512, data)
        env.dtu.send(5, ("write", 7, 1, 512), 32)
        slot, irq2 = yield from irq_gate.receive()
        irq_gate.ack(slot)
        return irq.payload, irq2.payload, data

    irq1, irq2, data = system.run_app(app, name="disk-app")
    assert data == b"sector three says hi"
    assert irq1[2][:2] == ("done", "read")
    assert irq2[2][:2] == ("done", "write")
    assert disk.media.read(7 * 512, 20) == b"sector three says hi"
    assert disk.commands_served == 2
