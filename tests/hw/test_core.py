"""Unit tests for core types."""

import pytest

from repro import params
from repro.hw import CORE_TYPES, Core
from repro.hw.core import FFT_ACCEL, FFT_ASIC, XTENSA


def test_core_registry_contains_paper_types():
    assert {"xtensa", "fft-accel", "fft-asic"} <= set(CORE_TYPES)


def test_fft_accelerator_speedup_factor():
    """Section 5.8: "about a factor of 30" over the software FFT."""
    nbytes = 32 * 1024
    software = XTENSA.cycles_for("fft", nbytes)
    accelerated = FFT_ACCEL.cycles_for("fft", nbytes)
    assert software / accelerated == pytest.approx(params.FFT_ACCEL_SPEEDUP, rel=0.01)


def test_asic_refuses_general_purpose_work():
    assert not FFT_ASIC.supports("sort")
    assert FFT_ASIC.supports("fft")
    with pytest.raises(ValueError):
        FFT_ASIC.cycles_for("sort", 100)


def test_general_purpose_core_needs_cost_entry():
    with pytest.raises(KeyError):
        XTENSA.cycles_for("unknown-op", 10)


def test_zero_bytes_still_costs_a_cycle():
    assert XTENSA.cycles_for("fft", 0) == 1


def test_core_accumulates_busy_cycles():
    core = Core(XTENSA)
    first = core.cycles_for("fft", 100)
    second = core.cycles_for("fft", 50)
    assert core.busy_cycles == first + second
