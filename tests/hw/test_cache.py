"""The Section 7 cache extension: correctness and behaviour."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dtu.registers import MemoryPerm
from repro.hw.cache import Cache, CachedMemory
from repro.m3.lib.gate import MemGate
from repro.m3.system import M3System
from repro.sim import Simulator


class _FakeBackend:
    """In-memory backend that records traffic (no DTU involved)."""

    def __init__(self, size=4096):
        self.memory = bytearray(size)
        self.reads = 0
        self.writes = 0

    def read(self, offset, size):
        self.reads += 1
        return bytes(self.memory[offset : offset + size])
        yield  # pragma: no cover

    def write(self, offset, data):
        self.writes += 1
        self.memory[offset : offset + len(data)] = data
        return len(data)
        yield  # pragma: no cover


def _cache(**kwargs):
    sim = Simulator()
    backend = _FakeBackend()
    cache = Cache(sim, backend.read, backend.write, **kwargs)
    return sim, backend, cache


def _run(sim, generator):
    return sim.run_process(generator)


def test_read_hits_after_first_miss():
    sim, backend, cache = _cache()
    backend.memory[0:4] = b"abcd"
    assert _run(sim, cache.read(0, 4)) == b"abcd"
    assert (cache.hits, cache.misses) == (0, 1)
    assert _run(sim, cache.read(0, 4)) == b"abcd"
    assert (cache.hits, cache.misses) == (1, 1)
    assert backend.reads == 1


def test_write_allocate_and_write_back_on_eviction():
    # direct-mapped, 2 sets of 32B: addresses 0 and 64 collide.
    sim, backend, cache = _cache(size_bytes=64, ways=1)
    _run(sim, cache.write(0, b"dirty line"))
    assert backend.writes == 0  # write-back: nothing reaches memory yet
    _run(sim, cache.read(64, 4))  # evicts the dirty line
    assert backend.writes == 1
    assert bytes(backend.memory[0:10]) == b"dirty line"


def test_flush_writes_dirty_lines():
    sim, backend, cache = _cache()
    _run(sim, cache.write(100, b"xyz"))
    _run(sim, cache.flush())
    assert bytes(backend.memory[100:103]) == b"xyz"
    # flushing twice writes nothing new
    writes = backend.writes
    _run(sim, cache.flush())
    assert backend.writes == writes


def test_lru_within_a_set():
    # one set, two ways, 32B lines: 0, 64, 128 all map to set 0... with
    # set_count=1 every line shares the set.
    sim, backend, cache = _cache(size_bytes=64, ways=2)
    _run(sim, cache.read(0, 1))    # line A
    _run(sim, cache.read(32, 1))   # line B (set 1!) — use same set: 64
    _run(sim, cache.read(64, 1))   # maps with A
    _run(sim, cache.read(0, 1))    # touch A
    _run(sim, cache.read(128, 1))  # evicts 64 (LRU), not A
    misses = cache.misses
    _run(sim, cache.read(0, 1))    # still resident
    assert cache.misses == misses


def test_misses_cost_more_than_hits():
    """Through a real MemGate, a miss pays the DTU round trip."""
    system = M3System(pe_count=2).boot(with_fs=False)

    def app(env):
        gate = yield from MemGate.create(env, 4096, MemoryPerm.RW.value)
        yield from gate.write(0, bytes(range(256)))
        cached = CachedMemory(env, gate)
        t0 = env.sim.now
        yield from cached.load(0, 16)  # miss
        miss_time = env.sim.now - t0
        t1 = env.sim.now
        yield from cached.load(0, 16)  # hit
        hit_time = env.sim.now - t1
        return miss_time, hit_time

    miss_time, hit_time = system.run_app(app)
    assert miss_time > 10 * hit_time


def test_invalid_geometry():
    sim = Simulator()
    backend = _FakeBackend()
    with pytest.raises(ValueError):
        Cache(sim, backend.read, backend.write, line_bytes=48)
    with pytest.raises(ValueError):
        Cache(sim, backend.read, backend.write, size_bytes=100, ways=3)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    operations=st.lists(
        st.tuples(
            st.booleans(),  # write?
            st.integers(min_value=0, max_value=1000),
            st.integers(min_value=1, max_value=100),
        ),
        min_size=1,
        max_size=40,
    ),
    ways=st.sampled_from([1, 2, 4]),
)
def test_cached_memory_equals_reference(operations, ways):
    """Any access sequence through the cache behaves exactly like a
    plain bytearray (after a flush, the backend matches too)."""
    sim = Simulator()
    backend = _FakeBackend(size=2048)
    cache = Cache(sim, backend.read, backend.write, size_bytes=256,
                  ways=ways)
    reference = bytearray(2048)
    counter = 0
    for is_write, address, size in operations:
        address = min(address, 2048 - size)
        if is_write:
            payload = bytes((counter + i) % 256 for i in range(size))
            counter += 1
            _run(sim, cache.write(address, payload))
            reference[address : address + size] = payload
        else:
            got = _run(sim, cache.read(address, size))
            assert got == bytes(reference[address : address + size])
    _run(sim, cache.flush())
    assert backend.memory == reference
