"""Unit and property tests for scratchpad memory."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hw import Scratchpad


def test_fresh_memory_is_zeroed():
    spm = Scratchpad(64)
    assert spm.read(0, 64) == bytes(64)


def test_write_read_roundtrip():
    spm = Scratchpad(128)
    spm.write(10, b"hello")
    assert spm.read(10, 5) == b"hello"
    assert spm.read(9, 1) == b"\x00"


def test_zero_region():
    spm = Scratchpad(32)
    spm.write(0, b"\xff" * 32)
    spm.zero(8, 8)
    assert spm.read(0, 32) == b"\xff" * 8 + bytes(8) + b"\xff" * 16


def test_bounds_enforced():
    spm = Scratchpad(16)
    with pytest.raises(ValueError):
        spm.read(8, 9)
    with pytest.raises(ValueError):
        spm.write(-1, b"x")
    with pytest.raises(ValueError):
        spm.read(0, -1)
    with pytest.raises(ValueError):
        Scratchpad(0)


def test_empty_access_at_end_is_legal():
    spm = Scratchpad(16)
    assert spm.read(16, 0) == b""


@given(st.data())
def test_disjoint_writes_do_not_interfere(data):
    spm = Scratchpad(256)
    offset_a = data.draw(st.integers(min_value=0, max_value=100))
    bytes_a = data.draw(st.binary(min_size=1, max_size=20))
    offset_b = data.draw(st.integers(min_value=130, max_value=230))
    bytes_b = data.draw(st.binary(min_size=1, max_size=20))
    spm.write(offset_a, bytes_a)
    spm.write(offset_b, bytes_b)
    assert spm.read(offset_a, len(bytes_a)) == bytes_a
    assert spm.read(offset_b, len(bytes_b)) == bytes_b


@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=200), st.binary(max_size=55)),
        max_size=30,
    )
)
def test_memory_matches_reference_model(writes):
    """The SPM behaves exactly like a plain bytearray."""
    spm = Scratchpad(256)
    reference = bytearray(256)
    for offset, data in writes:
        spm.write(offset, data)
        reference[offset : offset + len(data)] = data
    assert spm.read(0, 256) == bytes(reference)
