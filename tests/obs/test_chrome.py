"""Chrome trace-event export: structure, determinism, JSON round-trip."""

import json

from repro.obs import Observer, export_chrome_trace, to_chrome_trace, trace_events
from repro.sim import Simulator


def _sample_observer() -> Observer:
    obs = Observer(Simulator())
    obs.complete("noop", "syscall", 0, 10, 250, vpe=1)
    obs.complete("message", "noc", 2, 15, 40)
    obs.instant("retransmit", "dtu", 2, attempt=1)
    obs.instant("probe", "watchdog")  # no node -> the global pid
    return obs


def test_spans_become_complete_events():
    events = trace_events(_sample_observer())
    spans = [e for e in events if e["ph"] == "X"]
    assert {(s["name"], s["ts"], s["dur"], s["pid"]) for s in spans} == {
        ("noop", 10, 240, 0),
        ("message", 15, 25, 2),
    }
    syscall = next(s for s in spans if s["name"] == "noop")
    assert syscall["tid"] == "syscall"
    assert syscall["args"] == {"vpe": 1}


def test_instants_and_process_metadata():
    events = trace_events(_sample_observer())
    instants = [e for e in events if e["ph"] == "i"]
    assert all(e["s"] == "p" for e in instants)
    probe = next(e for e in instants if e["name"] == "probe")
    assert probe["pid"] == -1  # unattributed -> the global pseudo-process
    names = {
        e["pid"]: e["args"]["name"]
        for e in events if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert names == {-1: "simulator", 0: "PE 0", 2: "PE 2"}


def test_node_labels_and_thread_names_in_metadata():
    obs = _sample_observer()
    obs.label_node(0, "kernel0")
    obs.label_node(2, "app:worker")
    events = trace_events(obs)
    names = {
        e["pid"]: e["args"]["name"]
        for e in events if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert names == {-1: "simulator", 0: "kernel0", 2: "app:worker"}
    threads = {
        (e["pid"], e["tid"])
        for e in events if e["ph"] == "M" and e["name"] == "thread_name"
    }
    # Each category row is named after itself, per process.
    assert (0, "syscall") in threads
    assert (2, "noc") in threads and (2, "dtu") in threads
    assert (-1, "watchdog") in threads
    for event in events:
        if event["ph"] == "M" and event["name"] == "thread_name":
            assert event["args"]["name"] == event["tid"]


def test_events_sorted_by_timestamp():
    events = [e for e in trace_events(_sample_observer()) if e["ph"] != "M"]
    assert [e["ts"] for e in events] == sorted(e["ts"] for e in events)


def test_export_round_trips_json(tmp_path):
    obs = _sample_observer()
    path = tmp_path / "out.trace.json"
    exported = export_chrome_trace(obs, path)
    loaded = json.loads(path.read_text())
    assert loaded == exported == to_chrome_trace(obs)
    assert loaded["metadata"]["clock"] == "simulated-cycles"
    assert loaded["metadata"]["spans_dropped"] == 0
    for event in loaded["traceEvents"]:
        assert "ph" in event and "pid" in event


def test_telemetry_epochs_become_counter_events():
    sim = Simulator()
    obs = Observer.install(sim)
    telemetry = obs.enable_telemetry(epoch=100)
    sim.schedule(10, lambda _: obs.count("req", 3))
    sim.schedule(150, lambda _: obs.gauge("depth", 7))
    sim.schedule(160, lambda _: obs.observe("lat", 120))
    sim.run()
    telemetry.flush()
    events = trace_events(obs)
    counters = [e for e in events if e["ph"] == "C"]
    assert {(e["name"], e["ts"], e["args"]["value"]) for e in counters} == {
        ("req", 100, 3),
        ("depth", 200, 7),
        ("lat", 200, 121),  # quantile series chart their p99 bound
    }
    assert all(e["pid"] == -1 and e["cat"] == "telemetry"
               for e in counters)
    # The telemetry thread row is named in the metadata.
    assert any(e["ph"] == "M" and e["name"] == "thread_name"
               and e["tid"] == "telemetry" for e in events)
    # Counter events keep the global timestamp ordering.
    timed = [e for e in events if e["ph"] != "M"]
    assert [e["ts"] for e in timed] == sorted(e["ts"] for e in timed)


def test_trace_without_telemetry_has_no_counter_events():
    events = trace_events(_sample_observer())
    assert not any(e["ph"] == "C" for e in events)
    assert not any(e.get("tid") == "telemetry" for e in events)


def test_dropped_counts_surface_in_metadata():
    obs = Observer(Simulator(), span_capacity=1)
    obs.complete("a", "c", 0, 0, 1)
    obs.complete("b", "c", 0, 1, 2)
    trace = to_chrome_trace(obs)
    assert trace["metadata"]["spans_dropped"] == 1
