"""Prometheus text exposition of the Observer's metrics."""

from repro.obs import Observer, render_prometheus
from repro.obs.prom import metric_name
from repro.sim import Simulator


def test_metric_name_sanitization():
    assert metric_name("kv.kv0.requests") == "kv_kv0_requests"
    assert metric_name("noc.packets-dropped") == "noc_packets_dropped"
    assert metric_name("9lives") == "_9lives"
    assert metric_name("") == "_"


def test_exposition_shape_and_determinism():
    def build():
        obs = Observer.install(Simulator())
        obs.count("kv.kv0.requests", 7)
        obs.count("autoscale.scale_ups")
        obs.gauge("depth", 3)
        obs.observe("kv.request_cycles", 100)
        obs.observe("kv.request_cycles", 5000)
        return render_prometheus(obs)

    text = build()
    assert text == build()
    assert text.endswith("\n")
    lines = text.splitlines()
    # Counters first, sorted.
    assert lines[0] == "# TYPE autoscale_scale_ups counter"
    assert lines[1] == "autoscale_scale_ups 1"
    assert "kv_kv0_requests 7" in lines
    assert "# TYPE depth gauge" in lines
    assert "depth 3" in lines
    # Histogram: cumulative buckets, +Inf, sum, count.
    assert 'kv_request_cycles_bucket{le="128"} 1' in lines
    assert 'kv_request_cycles_bucket{le="8192"} 2' in lines
    assert 'kv_request_cycles_bucket{le="+Inf"} 2' in lines
    assert "kv_request_cycles_sum 5100" in lines
    assert "kv_request_cycles_count 2" in lines


def test_empty_observer_renders_empty_page():
    assert render_prometheus(Observer.install(Simulator())) == "\n"
