"""Log2-bucket histograms: bucket maths and deterministic summaries."""

import pytest

from repro.obs.metrics import BUCKET_COUNT, Histogram


def test_bucket_bounds_partition_the_integers():
    assert Histogram.bucket_bounds(0) == (0, 1)
    previous_high = 1
    for index in range(1, BUCKET_COUNT):
        low, high = Histogram.bucket_bounds(index)
        assert low == previous_high  # contiguous, no gaps
        assert high == 2 * low
        previous_high = high


def test_samples_land_in_their_bucket():
    hist = Histogram("t")
    for value in (0, 1, 2, 3, 4, 7, 8, 1023, 1024):
        hist.observe(value)
    assert hist.counts[0] == 1  # {0}
    assert hist.counts[1] == 1  # [1, 2)
    assert hist.counts[2] == 2  # [2, 4)
    assert hist.counts[3] == 2  # [4, 8)
    assert hist.counts[4] == 1  # [8, 16)
    assert hist.counts[10] == 1  # [512, 1024)
    assert hist.counts[11] == 1  # [1024, 2048)
    assert hist.count == 9
    assert hist.min == 0 and hist.max == 1024


def test_huge_values_clamp_to_last_bucket():
    hist = Histogram()
    hist.observe(1 << 200)
    assert hist.counts[BUCKET_COUNT - 1] == 1


def test_negative_sample_rejected():
    with pytest.raises(ValueError):
        Histogram().observe(-1)


def test_mean_and_percentiles():
    hist = Histogram()
    assert hist.mean == 0.0
    assert hist.percentile(0.5) == 0
    for value in (10, 20, 30, 40):
        hist.observe(value)
    assert hist.mean == 25.0
    # p50 falls in [16, 32); the bound returned is the bucket's top.
    assert hist.percentile(0.5) == 32
    assert hist.percentile(1.0) == 64
    with pytest.raises(ValueError):
        hist.percentile(1.5)


def test_fine_bounds_partition_each_octave():
    hist = Histogram(precision=2)
    # Values with <= 3 significant bits are exact (width-1 sub-buckets).
    for value in range(8):
        assert hist.fine_bounds(value) == (value, value + 1)
    # [8, 16) splits into 2^2 = 4 sub-buckets of width 2: contiguous,
    # gap-free, and ending exactly at the octave's top.
    previous_high = 8
    for value in range(8, 16):
        low, high = hist.fine_bounds(value)
        assert low <= value < high
        assert high - low == 2
        if low == previous_high:
            previous_high = high
    assert previous_high == 16
    # An arbitrary large value keeps precision+1 significant bits.
    low, high = hist.fine_bounds(1000)
    assert (low, high) == (896, 1024)
    assert high - low == 128  # 2^(9 - 2)


def test_fine_bounds_requires_precision():
    with pytest.raises(ValueError):
        Histogram().fine_bounds(10)
    with pytest.raises(ValueError):
        Histogram(precision=0)


def test_precision_percentiles_resolve_the_tail():
    coarse = Histogram()
    fine = Histogram(precision=7)
    # 998 fast requests at 100 cycles, one straggler at 7000: the
    # coarse p999 can only answer "below 8192"; the fine histogram
    # pins the straggler to within 1/128 of its value.
    for _ in range(998):
        coarse.observe(100)
        fine.observe(100)
    coarse.observe(7000)
    fine.observe(7000)
    assert coarse.percentile(0.999) == 8192
    p999 = fine.percentile(0.999)
    assert 7000 < p999 <= 7000 * (1 + 1 / 128)
    assert p999 == 7008  # [6976, 7008): width 2^(12-7) = 32
    # The coarse buckets are still maintained (rows() unchanged).
    assert fine.counts[7] == 998  # [64, 128)


def test_precision_boundary_quantiles():
    hist = Histogram(precision=4)
    assert hist.percentile(0.0) == 0  # empty
    for value in (10, 20, 30, 40):
        hist.observe(value)
    # p0: the first non-empty sub-bucket's upper bound.  10 has 4
    # significant bits (<= precision + 1), so it is counted exactly.
    assert hist.percentile(0.0) == 11
    # p50 at an even count: threshold = 2 lands on the second sample.
    assert hist.percentile(0.5) == 21
    # p100: the bound of the sub-bucket holding the maximum.
    assert hist.percentile(1.0) == 42  # [40, 42): width 2^(5-4) = 2
    # Exact region: every distinct small value is its own sub-bucket.
    small = Histogram(precision=4)
    for value in (3, 3, 7, 9):
        small.observe(value)
    assert small.percentile(0.5) == 4
    assert small.percentile(1.0) == 10


def test_precision_zero_sample_and_determinism():
    hist = Histogram(precision=3)
    hist.observe(0)
    assert hist.percentile(0.5) == 1
    # Replayed observations give identical fine state: pure functions
    # of the sample values, no insertion-order effects.
    a, b = Histogram(precision=3), Histogram(precision=3)
    for value in (500, 17, 0, 9000, 17, 123456):
        a.observe(value)
    for value in (123456, 0, 17, 9000, 500, 17):
        b.observe(value)
    assert a.fine == b.fine
    assert [a.percentile(f) for f in (0.0, 0.5, 0.99, 1.0)] == \
        [b.percentile(f) for f in (0.0, 0.5, 0.99, 1.0)]


def test_rows_only_nonempty_buckets_with_cumulative_share():
    hist = Histogram()
    hist.observe(1)
    hist.observe(1000)
    rows = hist.rows()
    assert rows == [
        ("[1, 2)", 1, "50.0%"),
        ("[512, 1,024)", 1, "100.0%"),
    ]


def test_percentile_rank_is_exact_decimal():
    # 0.7 * 10 is 7.000000000000001 in binary floats; the rank must
    # still be ceil(7/10 * 10) = 7, i.e. the 7th sample, not the 8th.
    hist = Histogram(precision=7)
    for value in range(1, 11):
        hist.observe(value)
    assert hist.percentile(0.7) == 8  # 7th sample is 7 -> bound 8
    coarse = Histogram()
    for value in (1, 1, 1, 1, 1, 1, 1, 64, 64, 64):
        coarse.observe(value)
    assert coarse.percentile(0.7) == 2  # rank 7 stays in [1, 2)


def test_percentile_single_sample_and_extremes():
    hist = Histogram()
    hist.observe(300)
    # A single sample answers every fraction with its own bound.
    for fraction in (0.0, 0.001, 0.5, 0.999, 1.0):
        assert hist.percentile(fraction) == 512
    fine = Histogram(precision=7)
    fine.observe(300)
    for fraction in (0.0, 0.5, 1.0):
        assert fine.percentile(fraction) == 302


def test_percentile_top_bucket_uses_observed_max():
    # Values too large for the nominal top-bucket range must not
    # report a bound below themselves.
    hist = Histogram()
    hist.observe(1 << 200)
    assert hist.percentile(0.5) == (1 << 200) + 1


def test_merge_equals_monolithic():
    left, right, whole = Histogram("m"), Histogram("m"), Histogram("m")
    for value in (0, 1, 5, 900):
        left.observe(value)
        whole.observe(value)
    for value in (3, 900, 1 << 40):
        right.observe(value)
        whole.observe(value)
    left.merge(right)
    assert left.counts == whole.counts
    assert (left.count, left.total) == (whole.count, whole.total)
    assert (left.min, left.max) == (whole.min, whole.max)


def test_merge_empty_and_precision_mismatch():
    hist = Histogram(precision=3)
    hist.observe(9)
    hist.merge(Histogram(precision=3))  # merging empty is a no-op
    assert hist.count == 1 and hist.min == 9 and hist.max == 9
    empty = Histogram(precision=3)
    empty.merge(hist)  # merging into empty copies the state
    assert empty.count == 1 and empty.min == 9 and empty.max == 9
    with pytest.raises(ValueError):
        hist.merge(Histogram())
    with pytest.raises(ValueError):
        Histogram().merge(hist)


def test_snapshot_round_trip():
    import json

    hist = Histogram("rt", precision=5)
    for value in (0, 7, 7, 4096, 123456789):
        hist.observe(value)
    snap = json.loads(json.dumps(hist.snapshot()))  # JSON-safe
    back = Histogram.from_snapshot(snap)
    assert back.counts == hist.counts
    assert back.fine == hist.fine
    assert (back.count, back.total, back.min, back.max) == \
        (hist.count, hist.total, hist.min, hist.max)
    assert back.name == "rt" and back.precision == 5
    empty = Histogram.from_snapshot(Histogram("e").snapshot())
    assert empty.count == 0 and empty.min is None and empty.fine is None
