"""Log2-bucket histograms: bucket maths and deterministic summaries."""

import pytest

from repro.obs.metrics import BUCKET_COUNT, Histogram


def test_bucket_bounds_partition_the_integers():
    assert Histogram.bucket_bounds(0) == (0, 1)
    previous_high = 1
    for index in range(1, BUCKET_COUNT):
        low, high = Histogram.bucket_bounds(index)
        assert low == previous_high  # contiguous, no gaps
        assert high == 2 * low
        previous_high = high


def test_samples_land_in_their_bucket():
    hist = Histogram("t")
    for value in (0, 1, 2, 3, 4, 7, 8, 1023, 1024):
        hist.observe(value)
    assert hist.counts[0] == 1  # {0}
    assert hist.counts[1] == 1  # [1, 2)
    assert hist.counts[2] == 2  # [2, 4)
    assert hist.counts[3] == 2  # [4, 8)
    assert hist.counts[4] == 1  # [8, 16)
    assert hist.counts[10] == 1  # [512, 1024)
    assert hist.counts[11] == 1  # [1024, 2048)
    assert hist.count == 9
    assert hist.min == 0 and hist.max == 1024


def test_huge_values_clamp_to_last_bucket():
    hist = Histogram()
    hist.observe(1 << 200)
    assert hist.counts[BUCKET_COUNT - 1] == 1


def test_negative_sample_rejected():
    with pytest.raises(ValueError):
        Histogram().observe(-1)


def test_mean_and_percentiles():
    hist = Histogram()
    assert hist.mean == 0.0
    assert hist.percentile(0.5) == 0
    for value in (10, 20, 30, 40):
        hist.observe(value)
    assert hist.mean == 25.0
    # p50 falls in [16, 32); the bound returned is the bucket's top.
    assert hist.percentile(0.5) == 32
    assert hist.percentile(1.0) == 64
    with pytest.raises(ValueError):
        hist.percentile(1.5)


def test_rows_only_nonempty_buckets_with_cumulative_share():
    hist = Histogram()
    hist.observe(1)
    hist.observe(1000)
    rows = hist.rows()
    assert rows == [
        ("[1, 2)", 1, "50.0%"),
        ("[512, 1,024)", 1, "100.0%"),
    ]
