"""The Observer hub: spans, metrics, capacity, and epoch sampling."""

import pytest

from repro.noc import MeshTopology, Network, Packet
from repro.obs import Observer
from repro.sim import Simulator


def test_install_hooks_sim_obs_once():
    sim = Simulator()
    assert sim.obs is None
    observer = Observer.install(sim)
    assert sim.obs is observer
    with pytest.raises(RuntimeError):
        Observer.install(sim)


def test_begin_end_span_with_merged_args():
    sim = Simulator()
    obs = Observer.install(sim)
    span_id = obs.begin("switch", "ctxsw", node=2, vpe=7)
    sim.schedule(100, lambda _: obs.end(span_id, outcome="ok"))
    sim.run()
    (span,) = obs.spans
    assert span.name == "switch" and span.category == "ctxsw"
    assert span.node == 2
    assert (span.begin, span.end) == (0, 100)
    assert span.args == {"vpe": 7, "outcome": "ok"}


def test_end_of_unknown_or_already_ended_span_raises_value_error():
    obs = Observer(Simulator())
    span_id = obs.begin("switch", "ctxsw", node=0)
    obs.end(span_id)
    # A double end (or a junk id) used to surface as a bare KeyError;
    # it is a usage error and says so.
    with pytest.raises(ValueError, match="is not open"):
        obs.end(span_id)
    with pytest.raises(ValueError, match="is not open"):
        obs.end(12345)


def test_complete_records_retroactively():
    sim = Simulator()
    obs = Observer.install(sim)
    sim.schedule(50, lambda _: obs.complete("pkt", "noc", 1, 10, 40))
    sim.run()
    (span,) = obs.spans
    assert (span.begin, span.end) == (10, 40)


def test_counters_gauges_histograms():
    obs = Observer(Simulator())
    obs.count("a")
    obs.count("a", 4)
    obs.gauge("depth", 3)
    obs.observe("lat", 100)
    obs.observe("lat", 200)
    assert obs.counters == {"a": 5}
    assert obs.gauges == {"depth": 3}
    assert obs.histogram("lat").count == 2
    assert obs.histogram("missing").count == 0  # empty, not KeyError


def test_span_capacity_rings_and_counts_drops():
    obs = Observer(Simulator(), span_capacity=2)
    for index in range(5):
        obs.complete(f"s{index}", "cat", -1, index, index + 1)
        obs.instant(f"i{index}", "cat")
    assert [s.name for s in obs.spans] == ["s3", "s4"]
    assert obs.spans_dropped == 3
    assert [i.name for i in obs.instants] == ["i3", "i4"]
    assert obs.instants_dropped == 3
    with pytest.raises(ValueError):
        Observer(Simulator(), span_capacity=0)


def test_network_iter_links_is_public():
    sim = Simulator()
    network = Network(sim, MeshTopology(2, 1), hop_cycles=1, bytes_per_cycle=1)
    links = dict(network.iter_links())
    # Every mesh edge plus the per-node loopbacks, keyed (src, dst).
    assert (0, 1) in links and (1, 0) in links
    assert (0, 0) in links and (1, 1) in links
    for (source, _destination), link in links.items():
        assert link.source == source


def test_link_epoch_sampling_is_lazy_and_flushable():
    sim = Simulator()
    obs = Observer.install(sim, epoch=100)
    network = Network(sim, MeshTopology(2, 1), hop_cycles=1, bytes_per_cycle=1)
    network.attach(0, lambda packet: None)
    network.attach(1, lambda packet: None)

    def traffic():
        yield network.transfer(Packet(0, 1, "msg", 34))  # 50 wire bytes
        yield sim.delay(300)
        yield network.transfer(Packet(0, 1, "msg", 34))

    sim.run_process(traffic(), "traffic")
    sim.run()
    # The second send (cycle ~351) folded the completed epochs in.
    series = obs.link_series[(0, 1)]
    assert series and all(end % 100 == 0 for end, _f in series)
    assert all(0.0 < fraction <= 1.0 for _end, fraction in series)
    before = len(series)
    obs.sample_links(network, force=True)
    # The trailing partial epoch (the second transfer) is flushed on
    # demand for end-of-run reports.
    assert len(obs.link_series[(0, 1)]) > before
    assert obs.link_series[(0, 1)][-1][0] == sim.now
