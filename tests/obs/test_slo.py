"""SLO specs and multi-window burn-rate alerting."""

import pytest

from repro.obs import Observer, SloMonitor, SloSpec, last_alert_before
from repro.sim import Simulator

#: one aggressive rule so tests breach quickly: short window 1 epoch,
#: long window 2 epochs, both must burn at 2x budget pace.
FAST = (("page", 1, 2, 2.0),)


def _hub(epoch=100):
    sim = Simulator()
    obs = Observer.install(sim)
    return sim, obs, obs.enable_telemetry(epoch=epoch)


def test_spec_validation():
    with pytest.raises(ValueError, match="target"):
        SloSpec("bad", target=1.0, series="lat", threshold=10)
    with pytest.raises(ValueError, match="not both"):
        SloSpec("bad", target=0.9)
    with pytest.raises(ValueError, match="not both"):
        SloSpec("bad", target=0.9, series="lat",
                bad_series="b", total_series="t")
    latency = SloSpec("lat", target=0.99, series="lat", threshold=500)
    assert latency.kind == "latency"
    assert "99.00%" in latency.describe()
    avail = SloSpec("ok", target=0.999, bad_series="drops",
                    total_series="sent")
    assert avail.kind == "availability"


def test_latency_slo_burns_fires_and_resolves():
    _sim, obs, telemetry = _hub()
    spec = SloSpec("kv-latency", target=0.9, series="lat", threshold=100)
    monitor = SloMonitor(obs, spec, windows=FAST)
    # Epoch 0: 10 samples, 5 over threshold -> bad fraction 0.5, budget
    # 0.1 -> burn 5.0 on both windows -> page fires.
    for value in (10, 10, 10, 10, 10, 200, 200, 200, 200, 200):
        telemetry.observe("lat", value)
    telemetry.advance(100)
    (alert,) = monitor.alerts
    assert alert[:3] == (100, "page", "fire")
    assert alert[3] == pytest.approx(5.0) and alert[4] == pytest.approx(5.0)
    assert monitor.breached
    assert [i.name for i in obs.instants] == ["slo_page"]
    # Epoch 1: all good.  Short-window burn drops to 0; the long
    # window still carries epoch 0, but the rule needs both.
    for _ in range(10):
        telemetry.observe("lat", 10)
    telemetry.advance(200)
    assert monitor.alerts[-1][:3] == (200, "page", "resolve")
    assert monitor.verdict()["bad"] == 5
    assert monitor.verdict()["total"] == 20
    assert monitor.verdict()["alerts"] == 1
    assert monitor.timeline[0][:4] == (0, 100, 5, 10)
    assert monitor.timeline[0][5] == ("page",)


def test_availability_slo_and_empty_windows_do_not_burn():
    _sim, obs, telemetry = _hub()
    spec = SloSpec("delivery", target=0.99, bad_series="net.drops",
                   total_series="net.sent")
    monitor = SloMonitor(obs, spec, windows=FAST)
    telemetry.advance(100)  # empty epoch: no traffic, no burn
    assert monitor.timeline[0][4]["page"] == (0.0, 0.0)
    telemetry.counter("net.sent", 100)
    telemetry.counter("net.drops", 4)
    telemetry.advance(200)
    # bad fraction 0.04 / budget 0.01 = burn 4.0 >= 2.0 on both.
    assert monitor.alerts[0][:3] == (200, "page", "fire")
    assert monitor.breached


def test_slow_burn_needs_the_long_window_too():
    _sim, obs, telemetry = _hub()
    spec = SloSpec("lat", target=0.9, series="lat", threshold=100)
    monitor = SloMonitor(obs, spec, windows=(("page", 1, 3, 2.0),))
    # A bad epoch after enough good history: the short window spikes
    # but the 3-epoch window stays below the factor, so no page.
    for _ in range(20):
        telemetry.observe("lat", 10)
    telemetry.advance(100)
    for _ in range(20):
        telemetry.observe("lat", 10)
    telemetry.advance(200)
    for _ in range(10):
        telemetry.observe("lat", 200)
    telemetry.observe("lat", 10)
    telemetry.advance(300)
    # long window over epochs 0..2: 10 bad / 51 total = 0.196 -> burn
    # 1.96 < 2.0, even though the short-window burn is 9.1.
    assert monitor.alerts == []
    assert not monitor.breached
    assert monitor.timeline[-1][4]["page"][0] > 2.0


def test_fired_since_cursor_and_last_alert_before():
    _sim, obs, telemetry = _hub()
    spec = SloSpec("lat", target=0.9, series="lat", threshold=100)
    monitor = SloMonitor(obs, spec, windows=FAST)
    cursor, fires = monitor.fired_since(0)
    assert fires == []
    for _ in range(10):
        telemetry.observe("lat", 500)
    telemetry.advance(100)
    cursor, fires = monitor.fired_since(cursor, severity="page")
    assert len(fires) == 1 and fires[0][2] == "fire"
    _cursor, fires = monitor.fired_since(cursor, severity="page")
    assert fires == []  # consumed
    assert last_alert_before(obs, 100) == (100, "lat", "page")
    assert last_alert_before(obs, 99) is None
    assert monitor.last_fired == (100, "lat", "page")


def test_monitor_requires_telemetry():
    obs = Observer.install(Simulator())
    with pytest.raises(RuntimeError, match="telemetry"):
        SloMonitor(obs, SloSpec("x", target=0.9, series="lat",
                                threshold=1))
