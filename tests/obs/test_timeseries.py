"""The telemetry plane: epoch bucketing, retention, merge, forwarding."""

import json

import pytest

from repro.obs import Observer, merge_snapshots
from repro.obs.timeseries import Telemetry
from repro.sim import Simulator


def _hub(epoch=100, **kwargs):
    sim = Simulator()
    obs = Observer.install(sim)
    return sim, obs, obs.enable_telemetry(epoch=epoch, **kwargs)


def test_counters_sum_within_their_epoch():
    sim, obs, telemetry = _hub()
    sim.schedule(10, lambda _: obs.count("req"))
    sim.schedule(20, lambda _: obs.count("req", 2))
    sim.schedule(150, lambda _: obs.count("req"))
    sim.schedule(320, lambda _: obs.count("req", 5))
    sim.run()
    telemetry.flush()
    assert telemetry.points("req") == [(0, 3), (1, 1), (3, 5)]
    assert telemetry.end_cycle(0) == 100
    # The cumulative counter is untouched by the epoch plane.
    assert obs.counters["req"] == 9


def test_gauges_last_write_wins_and_quantiles_per_epoch():
    sim, obs, telemetry = _hub()
    sim.schedule(10, lambda _: obs.gauge("depth", 4))
    sim.schedule(90, lambda _: obs.gauge("depth", 7))
    sim.schedule(110, lambda _: obs.observe("lat", 30))
    sim.schedule(120, lambda _: obs.observe("lat", 50))
    sim.schedule(210, lambda _: obs.observe("lat", 9000))
    sim.run()
    telemetry.flush()
    assert telemetry.points("depth") == [(0, 7)]
    (first, second) = telemetry.points("lat")
    assert first[0] == 1 and first[1].count == 2 and first[1].max == 50
    assert second[0] == 2 and second[1].count == 1
    assert second[1].percentile(0.99) == 9024  # precision=7 default


def test_series_kind_conflict_raises():
    _sim, _obs, telemetry = _hub()
    telemetry.counter("x")
    telemetry.flush()
    telemetry.gauge("x", 1)
    with pytest.raises(ValueError, match="is a counter"):
        telemetry.flush()


def test_flush_is_idempotent_and_refolds_partial_epochs():
    sim, obs, telemetry = _hub()
    sim.schedule(10, lambda _: obs.count("req", 2))
    sim.run()
    telemetry.flush()
    telemetry.flush()
    assert telemetry.points("req") == [(0, 2)]
    obs.count("req", 3)  # lands in the same (re-opened) epoch 0
    telemetry.flush()
    assert telemetry.points("req") == [(0, 5)]


def test_retention_ring_drops_oldest_epochs():
    sim, obs, telemetry = _hub(retention=2)
    for cycle in (10, 110, 210, 310):
        sim.schedule(cycle, lambda _: obs.count("req"))
    sim.run()
    telemetry.flush()
    assert telemetry.points("req") == [(2, 1), (3, 1)]
    assert telemetry.dropped_epochs == {"req": 2}


def test_samplers_polled_at_epoch_close():
    sim, _obs, telemetry = _hub()
    depth = {"value": 5}
    telemetry.add_sampler(lambda: (("kv.kv0.depth", depth["value"]),))
    sim.schedule(150, lambda _: depth.__setitem__("value", 9))
    sim.schedule(150, lambda _: telemetry.advance())
    sim.schedule(250, lambda _: telemetry.advance())
    sim.run()
    # Epoch 0 closed at cycle 150 (lazy): it sampled the value as of
    # the close, deterministically.
    assert telemetry.points("kv.kv0.depth") == [(0, 9), (1, 9)]


def test_watch_threshold_counts_exact_over_events():
    _sim, _obs, telemetry = _hub()
    over = telemetry.watch_threshold("lat", 100)
    assert over == "lat.over_100"
    for value in (40, 100, 101, 5000):
        telemetry.observe("lat", value)
    telemetry.flush()
    assert telemetry.points(over) == [(0, 2)]  # 101 and 5000; 100 is ok


def test_window_sum_and_value_at():
    _sim, _obs, telemetry = _hub()
    for index, value in ((0, 2), (1, 3), (3, 5)):
        telemetry._fold("req", "counter", index, value)
    assert telemetry.window_sum("req", 3, 4) == 10
    assert telemetry.window_sum("req", 3, 2) == 5  # epochs 2..3
    assert telemetry.value_at("req", 1) == 3
    assert telemetry.value_at("req", 2) == 0


def test_snapshot_merge_equals_monolithic():
    def run(offsets):
        sim = Simulator()
        obs = Observer.install(sim)
        telemetry = obs.enable_telemetry(epoch=100)
        for cycle in offsets:
            sim.schedule(cycle, lambda _: obs.count("req"))
            sim.schedule(cycle, lambda _, c=cycle: obs.observe("lat", c))
        sim.run()
        telemetry.flush()
        return telemetry

    shard_a = run((10, 20, 150))
    shard_b = run((30, 250))
    whole = run((10, 20, 30, 150, 250))
    merged = merge_snapshots([shard_a.snapshot(), shard_b.snapshot()])
    # Byte-level determinism of the merged form, and equality with the
    # monolithic run's own snapshot.
    assert json.dumps(merged, sort_keys=True) == \
        json.dumps(whole.snapshot(), sort_keys=True)
    # Merge is order-independent.
    flipped = merge_snapshots([shard_b.snapshot(), shard_a.snapshot()])
    assert flipped == merged


def test_merge_rejects_mismatched_epochs_and_kinds():
    sim = Simulator()
    a = Telemetry(sim, epoch=100)
    b = Telemetry(sim, epoch=200)
    with pytest.raises(ValueError, match="epochs"):
        merge_snapshots([a.snapshot(), b.snapshot()])
    with pytest.raises(ValueError, match="nothing to merge"):
        merge_snapshots([])
    c = Telemetry(sim, epoch=100)
    c.counter("x")
    c.flush()
    d = Telemetry(sim, epoch=100)
    d.gauge("x", 1)
    d.flush()
    with pytest.raises(ValueError, match="in another"):
        merge_snapshots([c.snapshot(), d.snapshot()])


def test_observer_without_telemetry_keeps_plain_metrics():
    sim = Simulator()
    obs = Observer.install(sim)
    assert obs.telemetry is None
    obs.count("a")
    obs.gauge("g", 1)
    obs.observe("h", 10)
    assert obs.counters == {"a": 1}
    with pytest.raises(RuntimeError):
        obs.enable_telemetry()
        obs.enable_telemetry()
