"""The flight recorder: bounded rings, deterministic dumps."""

import pytest

from repro.obs import Observer, render_dump
from repro.sim import Simulator


def _hub(**kwargs):
    sim = Simulator()
    obs = Observer.install(sim)
    flight = obs.enable_flight_recorder(**kwargs)
    return sim, obs, flight


def test_rings_are_bounded_per_domain():
    _sim, obs, flight = _hub(capacity=2, domain_of={1: 0, 2: 0, 5: 1})
    for index in range(4):
        obs.instant(f"evt{index}", "test", 1)
    obs.instant("other", "test", 5)
    obs.instant("unmapped", "test", 9)  # -> domain -1
    dump = flight.dump("on demand")
    assert [i.name for i in dump["instants"][0]] == ["evt2", "evt3"]
    assert [i.name for i in dump["instants"][1]] == ["other"]
    assert [i.name for i in dump["instants"][-1]] == ["unmapped"]


def test_dump_includes_spans_counters_and_telemetry_tail():
    sim, obs, flight = _hub(domain_of={3: 0}, epochs=2)
    telemetry = obs.enable_telemetry(epoch=100)
    obs.count("kernel0.ik_retries", 3)
    obs.complete("req", "kv", 3, begin=0, end=40, status="ok")
    sim.schedule(350, lambda _: obs.observe("lat", 120))
    sim.run()
    telemetry.flush()
    dump = flight.dump("domain 1 declared dead", domain=1)
    assert dump["reason"] == "domain 1 declared dead"
    assert dump["cycle"] == 350 and dump["domain"] == 1
    assert dump["counters"]["kernel0.ik_retries"] == 3
    assert [s.name for s in dump["spans"][0]] == ["req"]
    # Telemetry tail: last `epochs` closed epochs per series, with
    # quantile series rendered compactly.
    assert dump["telemetry"]["kernel0.ik_retries"] == [(0, 3)]
    assert dump["telemetry"]["lat"] == [(3, "n=1 p99<121")]
    # Dumps are retained and announced as an instant.
    assert flight.dumps[-1] is dump
    assert obs.instants[-1].name == "flight_dump"


def test_render_dump_is_deterministic_and_domain_first():
    def build():
        _sim, obs, flight = _hub(domain_of={1: 0, 5: 1})
        obs.instant("heartbeat_miss", "ik", 1, peer=1)
        obs.instant("peer_dead", "ik", 5, peer=0, reason="heartbeats")
        obs.complete("req", "kv", 1, begin=10, end=25, status="ok")
        return render_dump(flight.dump("test verdict", domain=1))

    text = build()
    assert text == build()
    lines = text.splitlines()
    assert lines[0] == "flight dump: test verdict"
    # The verdict's domain renders before the others.
    assert lines.index("  domain 1:") < lines.index("  domain 0:")
    assert any("peer_dead/ik node=5 peer=0 reason=heartbeats" in line
               for line in lines)
    assert any("[       10..       25] req/kv node=1 status=ok" in line
               for line in lines)


def test_render_dump_truncates_ring_tails():
    _sim, obs, flight = _hub(domain_of={1: 0})
    for index in range(30):
        obs.instant(f"evt{index:02d}", "test", 1)
    text = render_dump(flight.dump("on demand"), instant_limit=3)
    assert "evt29" in text and "evt26" not in text


def test_capacity_validation_and_double_enable():
    sim = Simulator()
    obs = Observer.install(sim)
    with pytest.raises(ValueError):
        obs.enable_flight_recorder(capacity=0)
    obs.enable_flight_recorder()
    with pytest.raises(RuntimeError):
        obs.enable_flight_recorder()
