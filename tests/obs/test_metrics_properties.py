"""Property tests: sharded histogram merges are exact.

The telemetry plane merges shard-local histograms (``runall`` workers,
``ShardedSimulator`` members) into one; these properties pin the merge
to be indistinguishable — bucket for bucket, sub-bucket for
sub-bucket, quantile for quantile — from a single histogram fed the
union of the samples.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import Histogram

# Cycle-count-shaped samples: heavy at small values, tail into the
# clamped top bucket.
samples = st.lists(
    st.integers(min_value=0, max_value=1 << 70), max_size=60
)
precisions = st.one_of(st.none(), st.integers(min_value=1, max_value=8))
fractions = st.sampled_from(
    [0.0, 0.001, 0.25, 0.5, 0.7, 0.9, 0.99, 0.999, 1.0]
)


def _fill(values, precision):
    hist = Histogram("p", precision=precision)
    for value in values:
        hist.observe(value)
    return hist


def _same(a: Histogram, b: Histogram) -> None:
    assert a.counts == b.counts
    assert a.fine == b.fine
    assert (a.count, a.total, a.min, a.max) == \
        (b.count, b.total, b.min, b.max)


@settings(max_examples=120, deadline=None)
@given(samples, samples, precisions)
def test_merge_of_shards_equals_monolithic(left, right, precision):
    merged = _fill(left, precision)
    merged.merge(_fill(right, precision))
    _same(merged, _fill(left + right, precision))


@settings(max_examples=80, deadline=None)
@given(samples, samples, samples, precisions, fractions)
def test_merge_preserves_quantiles_and_is_associative(
    a, b, c, precision, fraction
):
    whole = _fill(a + b + c, precision)
    left_first = _fill(a, precision)
    left_first.merge(_fill(b, precision))
    left_first.merge(_fill(c, precision))
    right_first = _fill(a, precision)
    tail = _fill(b, precision)
    tail.merge(_fill(c, precision))
    right_first.merge(tail)
    _same(left_first, whole)
    _same(right_first, whole)
    assert left_first.percentile(fraction) == whole.percentile(fraction)


@settings(max_examples=80, deadline=None)
@given(samples, precisions)
def test_snapshot_round_trip_property(values, precision):
    original = _fill(values, precision)
    _same(Histogram.from_snapshot(original.snapshot()), original)


@settings(max_examples=80, deadline=None)
@given(samples, samples, precisions, fractions)
def test_snapshot_merge_path_equals_monolithic(left, right, precision,
                                               fraction):
    # The path the telemetry snapshots take: serialize per shard,
    # rebuild, merge — still exact.
    rebuilt = Histogram.from_snapshot(_fill(left, precision).snapshot())
    rebuilt.merge(
        Histogram.from_snapshot(_fill(right, precision).snapshot())
    )
    whole = _fill(left + right, precision)
    _same(rebuilt, whole)
    assert rebuilt.percentile(fraction) == whole.percentile(fraction)
