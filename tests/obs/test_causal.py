"""Causal tracing: context stacks, request assembly, critical paths."""

import pytest

from repro.obs import Observer
from repro.obs.causal import (
    NO_CONTEXT,
    CausalTracker,
    TraceContext,
    assemble_requests,
    component_breakdown,
    component_of,
    critical_path,
    find_request,
)
from repro.sim import Simulator


# -- the tracker --------------------------------------------------------------


def test_tracker_nests_and_closes_by_span_id():
    tracker = CausalTracker()
    assert tracker.current(0) == NO_CONTEXT
    trace, parent = tracker.open(0, span_id=1)
    assert trace >= 1 and parent == -1
    trace2, parent2 = tracker.open(0, span_id=2)
    assert trace2 == trace and parent2 == 1
    # interleaved processes may close out of stack order
    tracker.close(0, 1)
    assert tracker.current(0) == TraceContext(trace, 2)
    tracker.close(0, 2)
    assert tracker.current(0) == NO_CONTEXT
    tracker.close(0, 99)  # unknown ids are tolerated


def test_tracker_adopts_explicit_parent():
    tracker = CausalTracker()
    assert tracker.open(3, 7, parent=TraceContext(42, 5)) == (42, 5)
    # an invalid propagated context starts a fresh trace instead
    trace, parent = tracker.open(4, 8, parent=NO_CONTEXT)
    assert trace != 42 and parent == -1
    # contexts are per node
    assert tracker.current(3).span_id == 7
    assert tracker.current(4).span_id == 8
    assert tracker.current(5) == NO_CONTEXT


# -- spans carry trace fields -------------------------------------------------


def test_begin_records_lineage():
    sim = Simulator()
    obs = Observer.install(sim)
    root = obs.begin("req", "syscall-client", node=1)
    child = obs.begin("handle", "syscall", node=1)
    obs.end(child)
    obs.end(root)
    spans = {span.name: span for span in obs.spans}
    assert spans["req"].parent_id == -1 and spans["req"].trace_id >= 1
    assert spans["handle"].parent_id == spans["req"].span_id
    assert spans["handle"].trace_id == spans["req"].trace_id


def test_complete_joins_but_never_starts_traces():
    sim = Simulator()
    obs = Observer.install(sim)
    idle = obs.complete("background", "noc", 0, 0, 10)
    assert idle.trace_id == -1 and idle.span_id == -1
    root = obs.begin("req", "syscall-client", node=0)
    nested = obs.complete("xfer", "dtu", 0, 0, 5)
    obs.end(root)
    root_span = next(s for s in obs.spans if s.name == "req")
    assert nested.trace_id == root_span.trace_id
    assert nested.parent_id == root_span.span_id
    assert nested.span_id >= 0


# -- assembly and critical paths ----------------------------------------------


def _observer_with_tree():
    """One request: root [0,100), message [10,30) -> queueing [20,30),
    kernel handler [30,80)."""
    sim = Simulator()
    obs = Observer.install(sim)
    root_id = obs.begin("noop", "syscall-client", node=0, vpe=1)
    sim.schedule(100, lambda _: obs.end(root_id))
    sim.run()
    root = obs.spans[0]
    ctx = TraceContext(root.trace_id, root.span_id)
    message = obs.complete("message", "dtu", 0, 10, 30, parent=ctx)
    obs.complete("queueing", "noc-queue", 0, 20, 30,
                 parent=TraceContext(message.trace_id, message.span_id))
    obs.complete("noop", "syscall", 1, 30, 80, parent=ctx)
    return obs


def test_assemble_requests_builds_one_tree():
    obs = _observer_with_tree()
    (request,) = assemble_requests(obs)
    assert request.root.name == "noop"
    assert request.root.category == "syscall-client"
    assert request.total_cycles == 100
    children = request.children()
    assert {s.name for s in children[request.root.span_id]} == {
        "message", "noop"
    }


def test_find_request_picks_last_match():
    sim = Simulator()
    obs = Observer.install(sim)
    for _ in range(2):
        span = obs.begin("noop", "syscall-client", node=0)
        obs.end(span)
    requests = assemble_requests(obs)
    assert find_request(obs, "noop") == requests[-1]
    with pytest.raises(ValueError, match="no traced request"):
        find_request(obs, "missing")


def test_critical_path_charges_deepest_cover_exactly():
    obs = _observer_with_tree()
    (request,) = assemble_requests(obs)
    segments = critical_path(request)
    assert sum(s.cycles for s in segments) == request.total_cycles
    assert [(s.start, s.end, s.component) for s in segments] == [
        (0, 10, "libm3"),
        (10, 20, "dtu-transfer"),
        (20, 30, "noc-contention"),  # deeper than the covering message
        (30, 80, "kernel"),
        (80, 100, "libm3"),  # the root covers the tail
    ]
    breakdown = component_breakdown(segments)
    assert breakdown == {
        "libm3": 30,
        "dtu-transfer": 10,
        "noc-contention": 10,
        "kernel": 50,
    }


def test_component_mapping_defaults_to_other():
    assert component_of("syscall") == "kernel"
    assert component_of("ik") == "inter-kernel"
    assert component_of("mystery") == "other"
