"""The wall-clock perf harness: workload determinism and the gate."""

import copy

from benchmarks.perf import harness


def test_engine_workload_is_deterministic():
    first = harness.engine_workload()
    second = harness.engine_workload()
    assert first == second
    cycles, hops = first
    assert cycles > 0
    # Every ring passes the token WIDTH stages x HOPS times, plus one
    # final zero-token delivery per ring.
    assert hops == harness.ENGINE_RINGS * (
        harness.ENGINE_WIDTH * harness.ENGINE_HOPS + 1
    )


def _sample():
    return {
        "schema": harness.SCHEMA_VERSION,
        "engine": {"sim_cycles_per_second": 100_000.0},
        "figures": {"fig3_micro": 1.0, "tab_arm": 0.5},
        "total_seconds": 1.5,
    }


def test_check_passes_within_tolerance():
    baseline = _sample()
    current = copy.deepcopy(baseline)
    current["engine"]["sim_cycles_per_second"] = 80_000.0  # -20%
    current["total_seconds"] = 1.8  # +20%
    assert harness.check(current, baseline, tolerance=0.30) == []


def test_check_fails_on_throughput_regression():
    baseline = _sample()
    current = copy.deepcopy(baseline)
    current["engine"]["sim_cycles_per_second"] = 60_000.0  # -40%
    failures = harness.check(current, baseline, tolerance=0.30)
    assert len(failures) == 1
    assert "engine throughput" in failures[0]


def test_check_fails_on_wall_time_regression():
    baseline = _sample()
    current = copy.deepcopy(baseline)
    current["total_seconds"] = 2.5  # +67%
    failures = harness.check(current, baseline, tolerance=0.30)
    assert len(failures) == 1
    assert "figure suite" in failures[0]


def test_committed_baseline_is_valid():
    assert harness.BASELINE_PATH.exists()
    import json

    baseline = json.loads(harness.BASELINE_PATH.read_text())
    assert baseline["schema"] == harness.SCHEMA_VERSION
    assert baseline["engine"]["sim_cycles_per_second"] > 0
    assert set(baseline["figures"]) >= {"fig3_micro", "fig6_scale"}
    assert baseline["total_seconds"] > 0
