"""The parallel evaluation runner: job list, merge, and determinism."""

import multiprocessing

import pytest

from repro.eval import fig6_multikernel, runall, tab_arm


def test_build_jobs_is_deterministic_and_complete():
    jobs = runall.build_jobs()
    assert jobs == runall.build_jobs()  # fixed order, every call
    kinds = {job[0] for job in jobs}
    assert kinds == {"fig6-point", "fig6mk-point", "figure", "ablation"}
    points = [job for job in jobs if job[0] == "fig6-point"]
    assert len(points) == (
        len(runall.FIG6_BENCHMARKS) * len(runall.FIG6_INSTANCE_COUNTS)
    )
    mk_points = [job for job in jobs if job[0] == "fig6mk-point"]
    assert len(mk_points) == (
        len(fig6_multikernel.BENCHMARKS) * len(fig6_multikernel.KERNEL_COUNTS)
    )
    figures = {job[1] for job in jobs if job[0] == "figure"}
    assert figures == set(runall._FIGURES)


def test_build_jobs_select_filters_by_output_name():
    jobs = runall.build_jobs(select=["tab_arm", "abl_cache"])
    assert jobs == [("ablation", "abl_cache"), ("figure", "tab_arm")]
    assert runall.build_jobs(select=["fig6_scale"]) == [
        job for job in runall.build_jobs() if job[0] == "fig6-point"
    ]
    assert runall.build_jobs(select=["fig6_multikernel"]) == [
        job for job in runall.build_jobs() if job[0] == "fig6mk-point"
    ]


def test_merge_fig6_normalises_against_smallest_count():
    averages = {
        (benchmark, count): 100.0 * count
        for benchmark in runall.FIG6_BENCHMARKS
        for count in runall.FIG6_INSTANCE_COUNTS
    }
    results = runall.merge_fig6(averages)
    assert set(results) == set(runall.FIG6_BENCHMARKS)
    for series in results.values():
        counts = [count for count, _avg, _norm in series]
        assert counts == sorted(runall.FIG6_INSTANCE_COUNTS)
        assert series[0][2] == 1.0  # baseline normalises to itself
        assert series[-1][2] == pytest.approx(
            max(counts) / min(counts)
        )


def test_merge_order_independent_of_point_completion_order():
    averages = {
        (benchmark, count): float(hash((benchmark, count)) % 1000 + 1)
        for benchmark in runall.FIG6_BENCHMARKS
        for count in runall.FIG6_INSTANCE_COUNTS
    }
    shuffled = dict(reversed(list(averages.items())))
    assert runall.merge_fig6(averages) == runall.merge_fig6(shuffled)


def test_serial_run_matches_direct_eval(tmp_path):
    files = runall.run_all(jobs=1, select=["tab_arm"], results_dir=tmp_path)
    expected = tab_arm.bench_table(tab_arm.run()) + "\n"
    assert files == {"tab_arm.txt": expected}
    assert (tmp_path / "tab_arm.txt").read_text() == expected


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="needs fork start method",
)
def test_pool_run_matches_serial_run(tmp_path):
    select = ["tab_arm", "abl_hop_latency"]
    serial = runall.run_all(jobs=1, select=select,
                            results_dir=tmp_path / "serial")
    pooled = runall.run_all(jobs=2, select=select,
                            results_dir=tmp_path / "pooled")
    assert serial == pooled
    assert set(serial) == {"tab_arm.txt", "abl_hop_latency.txt"}
