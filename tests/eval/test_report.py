"""Report rendering and stack extraction."""

from repro.eval.report import render_table, stacks


def test_render_table_alignment_and_formatting():
    table = render_table(
        "Title", ["name", "value"], [("a", 1234567), ("bb", 8.5)]
    )
    lines = table.splitlines()
    assert lines[0] == "Title"
    assert lines[1] == "====="
    assert "1,234,567" in table
    assert "8.50" in table
    # all rows share the same width
    assert len({len(line) for line in lines[2:]}) == 1


def test_render_table_empty_rows():
    table = render_table("T", ["a", "b"], [])
    assert "a" in table and "b" in table


def test_stacks_fold_fft_into_app():
    app, xfers, os_cycles = stacks({"app": 10, "fft": 5, "xfer": 3, "os": 2})
    assert (app, xfers, os_cycles) == (15, 3, 2)
    assert stacks({}) == (0, 0, 0)
