"""Zero-overhead contract, wired as assertions.

The telemetry plane must be invisible until enabled: with ``obs`` off
(and with ``obs`` on but telemetry never attached, as in the autoscale
eval) the instrumented hot paths take the same single ``is None``
branch they always did, and the committed results files regenerate
byte-identically.  CI double-runs the evals too, but these assertions
catch a contract break at ``pytest`` time, before any results file is
rewritten.

The three evals here cross every instrumented layer: traffic (loadgen
counters + latency histogram + NoC/DTU series), autoscale (the
controller's event log under ``policy="depth"``), and domain_failover
(the heartbeat verdict path that also hosts the flight-recorder
trigger).
"""

import pytest

from repro.eval import runall


def _committed(filename: str) -> str:
    return (runall.RESULTS_DIR / filename).read_text()


@pytest.mark.parametrize(
    "worker",
    [runall._traffic, runall._autoscale, runall._domain_failover],
    ids=["traffic", "autoscale", "domain_failover"],
)
def test_eval_regenerates_committed_bytes(worker):
    for filename, content in worker().items():
        assert content == _committed(filename), (
            f"{filename} drifted from the committed bytes — the "
            f"telemetry plane leaked into an un-instrumented run"
        )
