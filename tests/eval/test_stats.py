"""System introspection and NoC tracing."""

from repro.eval import stats
from repro.m3.lib.file import OpenFlags
from repro.m3.system import M3System


def _busy_system():
    system = M3System(pe_count=4).boot()

    def app(env):
        f = yield from env.vfs.open("/s", OpenFlags.W | OpenFlags.CREATE)
        yield from f.write(b"stats!" * 100)
        yield from f.close()
        return ()

    system.run_app(app)
    return system


def test_collect_counts_everything():
    system = _busy_system()
    data = stats.collect(system)
    assert data["cycles"] == system.sim.now > 0
    assert data["noc"]["packets"] > 10
    assert data["kernel"]["syscalls"] >= 4
    assert data["kernel"]["services"] == ["m3fs"]
    assert data["filesystems"] if "filesystems" in data else True
    fs = data["filesystems"]["m3fs"]
    assert fs["requests"] >= 3  # open + append + close at least
    assert fs["blocks_used"] >= 1
    kernel_dtu = [d for d in data["dtus"] if d["node"] == 0]
    assert kernel_dtu and kernel_dtu[0]["privileged"]


def test_report_renders_tables():
    system = _busy_system()
    text = stats.report(system)
    assert "System state at cycle" in text
    assert "DTU traffic" in text
    assert "Filesystem services" in text
    assert "m3fs" in text


def test_noc_tracing_records_packets():
    system = M3System(pe_count=3)
    tracer = system.platform.network.enable_tracing()
    system.boot(with_fs=False)

    def app(env):
        yield from env.syscall("noop")
        return ()

    system.run_app(app)
    kinds = {record.category for record in tracer.records}
    assert "message" in kinds  # the syscall message
    assert "ep_config" in kinds  # boot-time downgrades
    rendered = tracer.render()
    assert "->" in rendered
