"""The profiling report module."""

from repro.eval import profile, stats
from repro.obs import Observer
from repro.sim import Simulator


def test_histogram_table_renders_buckets_and_summary():
    obs = Observer(Simulator())
    for value in (100, 200, 3000):
        obs.observe("lat", value)
    text = profile.histogram_table(obs.histogram("lat"))
    assert "Histogram lat" in text
    assert "n=3" in text
    assert "[128, 256)" in text
    assert "[2,048, 4,096)" in text


def test_summary_and_counter_tables():
    obs = Observer(Simulator())
    obs.observe("a.lat", 10)
    obs.count("x", 3)
    obs.count("y", 9)
    summary = profile.histogram_summary_table(obs)
    assert "a.lat" in summary and "p99<" in summary
    counters = profile.counter_table(obs)
    # Largest first.
    assert counters.index("y") < counters.index("x")


def test_profile_run_produces_report_and_matches_stats(tmp_path):
    system = profile.run()
    obs = system.sim.obs
    assert obs.histogram("kernel.syscall_cycles").count >= profile.PROFILE_SYSCALLS
    assert obs.histogram("dtu.msg_rtt").count > 0

    text = profile.render(system)
    assert "m3.syscall_rtt" in text
    assert "NoC link utilisation" in text
    assert "epoch" in text  # occupancy series made it in

    # stats.collect delegates to profile.collect — same data.
    data = stats.collect(system)
    assert data is not None and data["cycles"] == system.sim.now
    assert data["noc"]["packets_injected"] == data["noc"]["packets"]  # no faults
    assert stats.report(system).startswith("System state at cycle")
