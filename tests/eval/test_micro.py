"""Fast sanity checks of the evaluation harness (full runs live in
``benchmarks/``)."""

import pytest

from repro import params
from repro.eval import fig3_micro, tab_arm


def test_m3_syscall_near_200_cycles():
    total, ledger = fig3_micro.m3_syscall_cycles()
    assert 150 <= total <= 260
    assert ledger.get("os", 0) >= 150  # the ~170 software cycles


def test_lx_syscall_exactly_410_and_320():
    assert fig3_micro.lx_syscall_cycles()[0] == 410
    assert fig3_micro.lx_syscall_cycles(costs=params.LINUX_ARM)[0] == 320


def test_arm_table_rows():
    rows = tab_arm.run()
    assert len(rows) == 3
    names = [row[0] for row in rows]
    assert any("syscall" in n for n in names)
    assert any("create" in n for n in names)
    assert any("copy" in n for n in names)


def test_copy_overhead_near_paper_value():
    """Section 5.2: ~3.2 M cycles overhead for copying 2 MiB."""
    overhead = tab_arm.copy_overhead(params.LINUX_XTENSA)
    assert overhead == pytest.approx(3.2e6, rel=0.15)


def test_fig4_read_faster_with_fewer_extents():
    from repro.eval import fig4_extents

    fragmented = fig4_extents.read_time(16)
    contiguous = fig4_extents.read_time(2048)
    assert fragmented > contiguous
