"""The telemetry eval's failover act: annotation, dump, determinism.

The serving act is covered by the results-stability suite (it is the
traffic eval plus a read-only telemetry attachment); these tests
exercise the cheaper domain-kill act end to end.
"""

import pytest

from repro.eval import telemetry


@pytest.fixture(scope="module")
def failover():
    return telemetry.failover_results()


def test_slo_pages_before_the_death_verdict(failover):
    """The whole point of the annotation: the delivery SLO was already
    paging on the background loss when the heartbeat verdict landed."""
    assert failover["peer"] == 1
    assert failover["detected_at"] > failover["killed_at"]
    assert failover["completed_at"] >= failover["detected_at"]
    annotation = failover["annotation"]
    assert annotation is not None
    alert_cycle, slo_name, severity = annotation
    assert slo_name == telemetry.FAIL_SLO.name
    assert severity == "page"
    assert alert_cycle < failover["detected_at"]
    # ... and the verdict agrees the objective was breached.
    assert failover["verdict"]["breached"]
    assert failover["verdict"]["alerts"] >= 1


def test_flight_dump_captures_the_dead_domain(failover):
    dump = failover["dump_text"]
    assert "declared dead" in dump
    assert "domain 1:" in dump  # the verdict's domain renders first
    assert dump.index("domain 1:") < dump.index("domain 0:")


def test_prometheus_excerpt_is_kernel0_only_with_types(failover):
    excerpt = failover["prom_excerpt"]
    assert excerpt, "excerpt must not be empty"
    assert any(line.startswith("# TYPE kernel0_") for line in excerpt)
    for line in excerpt:
        name = line.split()[2 if line.startswith("#") else 0]
        assert name.startswith("kernel0_")


def test_failover_act_is_deterministic(failover):
    again = telemetry.failover_results()
    assert again == failover


def test_flight_variant_differs_from_the_committed_act(failover):
    """CI's variant gate re-rolls seed and loss rate; it must exercise
    a distinct dump, not re-render the committed one."""
    variant = telemetry.flight_variant()
    assert "declared dead" in variant
    assert variant != failover["dump_text"]
