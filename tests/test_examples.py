"""Smoke tests: every example script runs to completion."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        del sys.modules[spec.name]
    out = capsys.readouterr().out
    assert out.strip()  # every example reports something
