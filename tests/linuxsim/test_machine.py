"""Integration tests for the Linux baseline machine."""

import pytest

from repro import params
from repro.linuxsim.fs import LxFsError
from repro.linuxsim.machine import (
    LinuxMachine,
    O_CREAT,
    O_RDONLY,
    O_TRUNC,
    O_WRONLY,
)


def test_null_syscall_costs_410_on_xtensa():
    machine = LinuxMachine()

    def program(lx):
        start = lx.sim.now
        yield from lx.null_syscall()
        return lx.sim.now - start

    assert machine.run_program(program) == params.LINUX_XTENSA.syscall_cycles


def test_null_syscall_costs_320_on_arm():
    machine = LinuxMachine(costs=params.LINUX_ARM)

    def program(lx):
        start = lx.sim.now
        yield from lx.null_syscall()
        return lx.sim.now - start

    assert machine.run_program(program) == 320


def test_file_write_read_roundtrip():
    machine = LinuxMachine()
    payload = bytes(range(256)) * 32

    def program(lx):
        fd = yield from lx.open("/f", O_WRONLY | O_CREAT)
        yield from lx.write(fd, payload)
        yield from lx.close(fd)
        fd = yield from lx.open("/f", O_RDONLY)
        data = bytearray()
        while True:
            chunk = yield from lx.read(fd, 4096)
            if not chunk:
                break
            data.extend(chunk)
        yield from lx.close(fd)
        return bytes(data)

    assert machine.run_program(program) == payload


def test_read_cost_decomposition_per_4k_block():
    """Section 5.4's read() numbers: enter/leave + fd/security + page
    cache + the memcpy of one block."""
    machine = LinuxMachine()
    costs = machine.costs

    def program(lx):
        fd = yield from lx.open("/f", O_WRONLY | O_CREAT)
        yield from lx.write(fd, b"z" * 4096)
        yield from lx.close(fd)
        fd = yield from lx.open("/f", O_RDONLY)
        start = lx.sim.now
        yield from lx.read(fd, 4096)
        return lx.sim.now - start

    elapsed = machine.run_program(program)
    expected = (
        costs.syscall_enter_leave_cycles
        + costs.fd_lookup_checks_cycles
        + costs.page_cache_op_cycles
        + machine.copy_cycles(4096)
    )
    assert elapsed == expected


def test_write_zeroes_fresh_blocks_only():
    machine = LinuxMachine()

    def timed_write(lx, fd, data):
        start = lx.sim.now
        yield from lx.write(fd, data)
        return lx.sim.now - start

    def program(lx):
        fd = yield from lx.open("/f", O_WRONLY | O_CREAT)
        first = yield from timed_write(lx, fd, b"a" * 4096)
        yield from lx.lseek(fd, 0)
        second = yield from timed_write(lx, fd, b"b" * 4096)  # overwrite
        return first, second

    first, second = machine.run_program(program)
    assert first - second == machine.zero_cycles(4096)


def test_warm_cache_machine_is_faster():
    def program(lx):
        fd = yield from lx.open("/f", O_WRONLY | O_CREAT)
        yield from lx.write(fd, b"d" * (256 * 1024))
        yield from lx.close(fd)
        fd = yield from lx.open("/f", O_RDONLY)
        while (yield from lx.read(fd, 4096)):
            pass
        return lx.sim.now

    cold = LinuxMachine(warm_cache=False).run_program(program)
    warm = LinuxMachine(warm_cache=True).run_program(program)
    assert warm < cold


def test_lseek_and_stat():
    machine = LinuxMachine()

    def program(lx):
        fd = yield from lx.open("/f", O_WRONLY | O_CREAT)
        yield from lx.write(fd, b"0123456789")
        yield from lx.lseek(fd, 2)
        yield from lx.write(fd, b"AB")
        yield from lx.close(fd)
        stat = yield from lx.stat("/f")
        fd = yield from lx.open("/f", O_RDONLY)
        data = yield from lx.read(fd, 100)
        return stat, data

    stat, data = machine.run_program(program)
    assert stat == ("file", 10, 1)
    assert data == b"01AB456789"


def test_open_missing_without_creat_fails():
    machine = LinuxMachine()

    def program(lx):
        try:
            yield from lx.open("/missing", O_RDONLY)
        except LxFsError as exc:
            return str(exc)

    assert "ENOENT" in machine.run_program(program)


def test_trunc_flag():
    machine = LinuxMachine()

    def program(lx):
        fd = yield from lx.open("/f", O_WRONLY | O_CREAT)
        yield from lx.write(fd, b"long old content")
        yield from lx.close(fd)
        fd = yield from lx.open("/f", O_WRONLY | O_TRUNC)
        yield from lx.write(fd, b"new")
        yield from lx.close(fd)
        return (yield from lx.stat("/f"))[1]

    assert machine.run_program(program) == 3


def test_pipe_between_forked_processes():
    machine = LinuxMachine()
    payload = b"through the kernel pipe!" * (5 * 64 * 1024 // 24)  # several pipe buffers

    def child(lx, write_fd):
        yield from lx.write(write_fd, payload)
        yield from lx.close(write_fd)
        return "done"

    def program(lx):
        read_fd, write_fd = yield from lx.pipe()
        child_env = yield from lx.fork(child, write_fd)
        # Parent must drop its copy of the write end for EOF to appear.
        yield from lx.close(write_fd)
        data = bytearray()
        while True:
            chunk = yield from lx.read(read_fd, 4096)
            if not chunk:
                break
            data.extend(chunk)
        result = yield from lx.waitpid(child_env)
        return bytes(data), result

    data, result = machine.run_program(program)
    assert data == payload
    assert result == "done"
    assert machine.cpu.context_switches > 2  # time sharing really happened


def test_sendfile_copies_without_user_crossing():
    machine = LinuxMachine()
    payload = b"S" * (64 * 1024)

    def program(lx):
        fd = yield from lx.open("/src", O_WRONLY | O_CREAT)
        yield from lx.write(fd, payload)
        yield from lx.close(fd)
        src = yield from lx.open("/src", O_RDONLY)
        dst = yield from lx.open("/dst", O_WRONLY | O_CREAT)
        syscalls_before = lx.syscall_count
        yield from lx.sendfile(dst, src, len(payload))
        syscalls = lx.syscall_count - syscalls_before
        yield from lx.close(src)
        yield from lx.close(dst)
        return syscalls, (yield from lx.stat("/dst"))[1]

    syscalls, size = machine.run_program(program)
    assert syscalls == 1
    assert size == len(payload)
    assert bytes(machine.fs.lookup("/dst").data) == payload


def test_fork_charges_fork_cost_and_runs_child():
    machine = LinuxMachine()

    def child(lx):
        yield lx.compute(100)
        return 42

    def program(lx):
        start = lx.sim.now
        child_env = yield from lx.fork(child)
        fork_cost = lx.sim.now - start
        result = yield from lx.waitpid(child_env)
        return fork_cost, result

    fork_cost, result = machine.run_program(program)
    assert fork_cost == machine.costs.fork_cycles
    assert result == 42


def test_mkdir_readdir_unlink_namespace_ops():
    machine = LinuxMachine()

    def program(lx):
        yield from lx.mkdir("/dir")
        fd = yield from lx.open("/dir/f", O_WRONLY | O_CREAT)
        yield from lx.close(fd)
        names = yield from lx.readdir("/dir")
        yield from lx.unlink("/dir/f")
        after = yield from lx.readdir("/dir")
        return names, after

    assert machine.run_program(program) == (["f"], [])
