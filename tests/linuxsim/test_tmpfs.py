"""Unit tests for the tmpfs model."""

import pytest

from repro.linuxsim.fs import LxFsError, TmpFs


def test_create_and_lookup():
    fs = TmpFs()
    node = fs.create("/f")
    assert fs.lookup("/f") is node
    assert fs.exists("/f")
    with pytest.raises(LxFsError):
        fs.create("/f")


def test_directories_and_nesting():
    fs = TmpFs()
    fs.mkdir("/a")
    fs.mkdir("/a/b")
    fs.create("/a/b/c")
    assert fs.readdir("/a/b") == ["c"]
    with pytest.raises(LxFsError):
        fs.mkdir("/missing/dir")
    with pytest.raises(LxFsError):
        fs.readdir("/a/b/c")


def test_unlink_and_nonempty_dir():
    fs = TmpFs()
    fs.mkdir("/d")
    fs.create("/d/f")
    with pytest.raises(LxFsError):
        fs.unlink("/d")
    fs.unlink("/d/f")
    fs.unlink("/d")
    assert not fs.exists("/d")


def test_hard_links():
    fs = TmpFs()
    node = fs.create("/one")
    fs.link("/one", "/two")
    assert fs.lookup("/two") is node
    assert node.links == 2
    with pytest.raises(LxFsError):
        fs.mkdir("/dirlink") or fs.link("/dirlink", "/nope")


def test_path_depth():
    fs = TmpFs()
    assert fs.path_depth("/") == 1
    assert fs.path_depth("/a") == 1
    assert fs.path_depth("/a/b/c") == 3


def test_block_accounting():
    fs = TmpFs()
    assert fs.blocks_of(0) == 0
    assert fs.blocks_of(1) == 1
    assert fs.blocks_of(4096) == 1
    assert fs.blocks_of(4097) == 2
    node = fs.create("/f")
    assert fs.new_blocks_for_write(node, 0, 100) == 1
    node.data.extend(b"x" * 100)
    assert fs.new_blocks_for_write(node, 100, 100) == 0
    assert fs.new_blocks_for_write(node, 4000, 200) == 1
