"""mmap on the Linux baseline: the configuration the paper measured
but excluded from Figure 3 because of cache thrashing (Section 5.4)."""

import pytest

from repro.linuxsim.fs import LxFsError
from repro.linuxsim.machine import (
    LinuxMachine,
    O_CREAT,
    O_RDONLY,
    O_WRONLY,
)


def _machine_with_file(payload):
    machine = LinuxMachine()
    node = machine.fs.create("/src")
    node.data.extend(payload)
    return machine


def test_mmap_read_roundtrip_and_faults():
    payload = bytes(range(256)) * 64  # 16 KiB = 4 pages
    machine = _machine_with_file(payload)

    def program(lx):
        fd = yield from lx.open("/src", O_RDONLY)
        mapping = yield from lx.mmap(fd)
        data = yield from mapping.read(0, len(payload))
        again = yield from mapping.read(0, 1024)  # already faulted in
        return data, mapping.faults, again

    data, faults, again = machine.run_program(program)
    assert data == payload
    assert faults == 4  # one per page, once
    assert again == payload[:1024]


def test_mmap_write_extends_file():
    machine = LinuxMachine()

    def program(lx):
        fd = yield from lx.open("/new", O_WRONLY | O_CREAT)
        mapping = yield from lx.mmap(fd)
        yield from mapping.write(100, b"mapped bytes")
        return bytes(machine.fs.lookup("/new").data[100:112])

    assert machine.run_program(program) == b"mapped bytes"


def test_mmap_requires_regular_file():
    machine = LinuxMachine()

    def program(lx):
        read_fd, _write_fd = yield from lx.pipe()
        try:
            yield from lx.mmap(read_fd)
        except LxFsError as exc:
            return str(exc)

    assert "ENODEV" in machine.run_program(program)


def test_mmap_copy_slower_than_read_write_copy():
    """The paper's excluded result: copying via mmap loses to the
    read()/write() loop because of fault/copy cache thrashing."""
    payload = b"c" * (256 * 1024)

    def read_write_copy(lx):
        src = yield from lx.open("/src", O_RDONLY)
        dst = yield from lx.open("/dst", O_WRONLY | O_CREAT)
        start = lx.sim.now
        while True:
            chunk = yield from lx.read(src, 4096)
            if not chunk:
                break
            yield from lx.write(dst, chunk)
        return lx.sim.now - start

    def mmap_copy(lx):
        src = yield from lx.open("/src", O_RDONLY)
        dst = yield from lx.open("/dst2", O_WRONLY | O_CREAT)
        start = lx.sim.now
        src_map = yield from lx.mmap(src)
        dst_map = yield from lx.mmap(dst)
        offset = 0
        while offset < len(payload):
            data = yield from src_map.read(offset, 4096)
            yield from dst_map.write(offset, data)
            offset += 4096
        return lx.sim.now - start

    machine = _machine_with_file(payload)
    classic = machine.run_program(read_write_copy)
    machine2 = _machine_with_file(payload)
    mapped = machine2.run_program(mmap_copy)
    assert mapped > 1.25 * classic
    assert bytes(machine2.fs.lookup("/dst2").data) == payload
